//===- Evaluation.h - The paper's evaluation harness -------------*- C++ -*-=//
//
// Computes every statistic the paper's tables and figures report:
//  - the Alive verification taxonomy (Tables I/II): correct (with the
//    trivial-copy sub-row), semantic error, syntax error, inconclusive;
//  - per-sample Better/Worse/Tie and mean relative change vs -O0 for
//    latency / binary size / instruction count, with the -O0 fallback on
//    verification failure (Table III);
//  - geomean improvements and pairwise win/tie/loss against the reference
//    pass, plus the best-of-both fallback composition (Figs. 5-7).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_PIPELINE_EVALUATION_H
#define VERIOPT_PIPELINE_EVALUATION_H

#include "model/Policy.h"
#include "data/Dataset.h"

#include <string>
#include <vector>

namespace veriopt {

/// Table I/II row counts.
struct VerifyTaxonomy {
  unsigned Total = 0;
  unsigned Correct = 0;
  unsigned CorrectCopies = 0; ///< sub-row of Correct
  unsigned SemanticError = 0;
  unsigned SyntaxError = 0;
  unsigned Inconclusive = 0;

  double pct(unsigned N) const {
    return Total ? 100.0 * N / Total : 0.0;
  }
  /// The paper's headline: verified AND different from the input.
  double differentCorrectRate() const {
    return Total ? 100.0 * (Correct - CorrectCopies) / Total : 0.0;
  }
};

/// Better/Worse/Tie counts plus mean relative change for one metric
/// (Table III rows). Negative mean = improvement.
struct MetricAgg {
  unsigned Better = 0, Worse = 0, Tie = 0;
  double MeanRelChange = 0; ///< mean of (out - base) / base
  double GeoRatio = 1.0;    ///< geomean of out/base (lower = better)
};

/// One sample's end-to-end evaluation.
struct SampleEval {
  VerifyStatus Status = VerifyStatus::Inconclusive;
  bool IsCopy = false;
  bool UsedFallback = false; ///< verification failed -> -O0 output kept
  double LatO0 = 0, LatOut = 0, LatRef = 0;
  unsigned ICountO0 = 0, ICountOut = 0, ICountRef = 0;
  unsigned SizeO0 = 0, SizeOut = 0, SizeRef = 0;
};

struct EvalResult {
  std::string ModelName;
  VerifyTaxonomy Taxonomy;
  MetricAgg Latency, Size, ICount; ///< vs -O0, fallback applied
  double GeoSpeedupVsO0 = 1.0;     ///< geomean LatO0/LatOut
  /// Pairwise vs the reference pass on latency (Fig. 6(c)).
  unsigned VsRefBetter = 0, VsRefWorse = 0, VsRefTie = 0;
  /// Fallback composition: min(model, reference) per sample, geomean
  /// improvement over reference alone (the paper's +17% result).
  double FallbackGainOverRef = 0;
  std::vector<SampleEval> PerSample;
};

/// Evaluate a policy on \p Valid with greedy decoding.
EvalResult evaluateModel(const RewritePolicyModel &Model,
                         const std::vector<Sample> &Valid, PromptMode Mode,
                         const VerifyOptions &VOpts = VerifyOptions());

/// The reference pass itself as a "model" row (its outputs are the
/// Sample::Reference functions).
EvalResult evaluateReferencePass(const std::vector<Sample> &Valid);

/// Render a taxonomy as a paper-style table block.
std::string renderTaxonomy(const std::string &Title, const VerifyTaxonomy &T);

} // namespace veriopt

#endif // VERIOPT_PIPELINE_EVALUATION_H
