//===- EvalDriver.cpp - Crash-tolerant multi-process eval driver --------------//

#include "pipeline/EvalDriver.h"

#include "support/AtomicFile.h"
#include "support/Subprocess.h"
#include "trace/Json.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>

#include <poll.h>
#include <time.h>

namespace veriopt {

//===--- Backoff --------------------------------------------------------------//

uint64_t driverBackoffMs(uint64_t Seed, unsigned ShardIdx, unsigned Attempt,
                         uint64_t BaseMs, uint64_t CapMs) {
  if (Attempt <= 1 || BaseMs == 0)
    return 0;
  // Capped exponential: Base * 2^(Attempt-2) for the delay before attempt
  // 2, 3, ... (attempt 1 is the initial launch).
  uint64_t D = BaseMs;
  for (unsigned I = 2; I < Attempt && D < CapMs; ++I)
    D = D > CapMs / 2 ? CapMs : D * 2;
  D = std::min(D, CapMs);
  // Deterministic jitter in [0, D/2]: a pure (Seed, ShardIdx, Attempt)
  // hash — same decision at any completion order — that de-synchronizes
  // shards failing in lockstep (the thundering-herd concern).
  uint64_t J = deriveShardSeed(Seed + 0x9e3779b97f4a7c15ULL * Attempt,
                               ShardIdx) %
               (D / 2 + 1);
  return std::min(CapMs, D + J);
}

const char *failureClassName(FailureClass C) {
  switch (C) {
  case FailureClass::Logic:
    return "logic";
  case FailureClass::Io:
    return "io";
  case FailureClass::Runtime:
    return "runtime";
  }
  return "unknown";
}

//===--- Result-file validation -----------------------------------------------//

bool loadValidShardResult(const std::string &Path, const EvalShard &Expect,
                          ShardEvalResult &Out, std::string *Why) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    if (Why)
      *Why = "missing result file " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string Err;
  Out = ShardEvalResult();
  if (!shardResultFromJson(SS.str(), Out, &Err)) {
    if (Why)
      *Why = "invalid result file " + Path + ": " + Err;
    return false;
  }
  if (Out.Shard.Index != Expect.Index || Out.Shard.Begin != Expect.Begin ||
      Out.Shard.End != Expect.End || Out.Shard.RngSeed != Expect.RngSeed) {
    if (Why)
      *Why = "result file " + Path + " is for a different shard identity";
    return false;
  }
  if (Out.PerSample.size() != Expect.End - Expect.Begin) {
    if (Why)
      *Why = "result file " + Path + " has " +
             std::to_string(Out.PerSample.size()) + " samples, expected " +
             std::to_string(Expect.End - Expect.Begin);
    return false;
  }
  return true;
}

//===--- Supervisor -----------------------------------------------------------//

namespace {

enum class ShardState { Pending, Running, Retrying, Done, Quarantined };

struct ShardRecord {
  EvalShard Shard;
  ShardState State = ShardState::Pending;
  unsigned Attempts = 0; ///< launches so far
  std::chrono::steady_clock::time_point NotBefore; ///< backoff gate
  std::vector<ShardAttemptFailure> Failures;
  ShardEvalResult Result; ///< valid when Done
};

struct ActiveWorker {
  std::unique_ptr<Subprocess> Proc;
  std::unique_ptr<TraceSpan> Span;
  size_t ShardSlot = 0;
  unsigned Attempt = 0;
};

std::string resultPath(const std::string &Dir, unsigned Index) {
  return Dir + "/shard_" + std::to_string(Index) + ".json";
}

void sleepMs(uint64_t Ms) {
  struct timespec TS;
  TS.tv_sec = static_cast<time_t>(Ms / 1000);
  TS.tv_nsec = static_cast<long>((Ms % 1000) * 1000000);
  ::nanosleep(&TS, nullptr);
}

/// Bounded, printable tail of a worker's stderr for the quarantine record.
std::string stderrTail(const SubprocessResult &R) {
  std::string S = R.StderrCapture;
  if (R.StderrTruncated)
    S += "\n[stderr truncated]";
  return S;
}

} // namespace

bool runEvalDriver(const EvalDriverOptions &Opts,
                   const std::string &ModelName, EvalDriverReport &Report,
                   std::string *Err) {
  Report = EvalDriverReport();

  std::vector<EvalShard> Plan;
  {
    std::ifstream IS(Opts.ManifestPath, std::ios::binary);
    if (!IS) {
      if (Err)
        *Err = "cannot open manifest " + Opts.ManifestPath;
      return false;
    }
    std::ostringstream SS;
    SS << IS.rdbuf();
    std::string MErr;
    if (!shardManifestFromJson(SS.str(), Plan, &MErr)) {
      if (Err)
        *Err = "invalid manifest " + Opts.ManifestPath + ": " + MErr;
      return false;
    }
  }
  if (Opts.WorkerArgv.empty()) {
    if (Err)
      *Err = "no worker command configured";
    return false;
  }
  const unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  const unsigned MaxWorkers = std::max(1u, Opts.MaxWorkers);

  TraceSpan Span("eval.driver");
  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &CSpawned = M.counter("driver.spawned");
  static Counter &CRetried = M.counter("driver.retried");
  static Counter &CQuarantined = M.counter("driver.quarantined");
  static Counter &CSalvaged = M.counter("driver.salvaged");

  std::vector<ShardRecord> Shards(Plan.size());
  const auto Epoch = std::chrono::steady_clock::now();
  size_t Open = 0; // shards not yet Done/Quarantined
  for (size_t I = 0; I < Plan.size(); ++I) {
    Shards[I].Shard = Plan[I];
    Shards[I].NotBefore = Epoch;
    // Resume: a valid existing result file satisfies the shard without a
    // worker. The atomic+durable write discipline is what makes this
    // trustworthy — a torn or empty file fails validation and re-runs.
    if (Opts.Resume &&
        loadValidShardResult(resultPath(Opts.ResultDir, Plan[I].Index),
                             Plan[I], Shards[I].Result, nullptr)) {
      Shards[I].State = ShardState::Done;
      ++Report.Reused;
    } else {
      ++Open;
    }
  }

  std::vector<ActiveWorker> Active;

  auto launch = [&](size_t Slot) {
    ShardRecord &R = Shards[Slot];
    ++R.Attempts;
    R.State = ShardState::Running;
    ++Report.Spawned;
    CSpawned.inc();
    if (R.Attempts > 1) {
      ++Report.Retried;
      CRetried.inc();
    }

    ActiveWorker W;
    W.ShardSlot = Slot;
    W.Attempt = R.Attempts;
    W.Span = std::make_unique<TraceSpan>("eval.worker");
    W.Proc = std::make_unique<Subprocess>();
    SubprocessOptions SO;
    SO.Argv = Opts.WorkerArgv;
    SO.Argv.insert(SO.Argv.end(),
                   {"--manifest", Opts.ManifestPath, "--shard",
                    std::to_string(R.Shard.Index), "--out", Opts.ResultDir,
                    "--attempt", std::to_string(R.Attempts)});
    SO.DeadlineMs = Opts.WorkerDeadlineMs;
    SO.MaxStderrBytes = Opts.MaxStderrBytes;
    W.Proc->spawn(SO); // spawn failure surfaces through poll()/finished()
    Active.push_back(std::move(W));
  };

  auto finishAttempt = [&](ActiveWorker &W) {
    ShardRecord &R = Shards[W.ShardSlot];
    const SubprocessResult &PR = W.Proc->result();

    std::string FailWhy;
    bool Ok = false;
    // Worker-I/O failures (typed exit 5: lock probe, store open, result
    // write — and an exit-0 claim whose file is missing or torn, which can
    // only be the write plane) are classified apart from worker-logic
    // failures (any other nonzero exit: usage, manifest, shard identity) so
    // quarantine diagnostics tell a failing disk from failing code.
    FailureClass Class = FailureClass::Runtime;
    if (PR.Outcome == SubprocessOutcome::Exited && PR.ExitCode == 0) {
      // Exit 0 is a claim, not proof: the result file must exist, parse,
      // and match the manifest's shard identity before it is trusted.
      Ok = loadValidShardResult(resultPath(Opts.ResultDir, R.Shard.Index),
                                R.Shard, R.Result, &FailWhy);
      if (!Ok)
        Class = FailureClass::Io;
    } else {
      if (PR.Outcome == SubprocessOutcome::Exited)
        Class = PR.ExitCode == 5 ? FailureClass::Io : FailureClass::Logic;
      FailWhy = PR.describe();
    }

    if (W.Span && W.Span->active()) {
      W.Span->arg(TraceArg::ofInt("shard", R.Shard.Index));
      W.Span->arg(TraceArg::ofInt("attempt", W.Attempt));
      W.Span->arg(TraceArg::ofStr("outcome",
                                  Ok ? "ok"
                                     : subprocessOutcomeName(PR.Outcome)));
      W.Span->arg(TraceArg::ofBool("salvaged", Ok));
    }
    W.Span.reset(); // close the span at the attempt boundary

    if (Ok) {
      R.State = ShardState::Done;
      --Open;
      return;
    }

    ShardAttemptFailure F;
    F.Attempt = R.Attempts;
    F.Class = Class;
    F.Reason = FailWhy;
    F.StderrTail = stderrTail(PR);
    R.Failures.push_back(std::move(F));

    if (R.Attempts >= MaxAttempts) {
      R.State = ShardState::Quarantined;
      CQuarantined.inc();
      --Open;
    } else {
      R.State = ShardState::Retrying;
      R.NotBefore = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        driverBackoffMs(Opts.Seed, R.Shard.Index,
                                        R.Attempts + 1, Opts.BackoffBaseMs,
                                        Opts.BackoffCapMs));
    }
  };

  while (Open > 0 || !Active.empty()) {
    // Launch phase: fill free worker slots with ready shards, lowest index
    // first (deterministic launch order).
    const auto Now = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Shards.size() && Active.size() < MaxWorkers;
         ++I) {
      ShardRecord &R = Shards[I];
      if ((R.State == ShardState::Pending ||
           R.State == ShardState::Retrying) &&
          R.NotBefore <= Now)
        launch(I);
    }

    if (Active.empty()) {
      // Everything open is gated on backoff: sleep to the earliest gate.
      auto Earliest = std::chrono::steady_clock::time_point::max();
      for (const ShardRecord &R : Shards)
        if (R.State == ShardState::Pending ||
            R.State == ShardState::Retrying)
          Earliest = std::min(Earliest, R.NotBefore);
      if (Earliest == std::chrono::steady_clock::time_point::max())
        break; // nothing left to run
      auto WaitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Earliest - std::chrono::steady_clock::now())
                        .count();
      if (WaitMs > 0)
        sleepMs(std::min<int64_t>(WaitMs, 50));
      continue;
    }

    // Progress phase: nonblocking poll over every active worker.
    bool Progress = false;
    for (size_t I = 0; I < Active.size();) {
      if (Active[I].Proc->poll()) {
        finishAttempt(Active[I]);
        Active.erase(Active.begin() + static_cast<long>(I));
        Progress = true;
      } else {
        ++I;
      }
    }
    if (Progress)
      continue;

    // Sleep until some child writes to stderr / exits (pipe EOF), with a
    // bounded timeslice so deadlines and backoff gates stay responsive.
    std::vector<struct pollfd> Fds;
    for (const ActiveWorker &W : Active)
      if (W.Proc->stderrFd() >= 0)
        Fds.push_back({W.Proc->stderrFd(), POLLIN, 0});
    if (Fds.empty())
      sleepMs(5);
    else
      ::poll(Fds.data(), Fds.size(), 10); // EINTR: loop just re-polls
  }

  // Salvage merge: every Done shard, in index order (mergeShardResults
  // canonicalizes anyway).
  std::vector<ShardEvalResult> Healthy;
  for (ShardRecord &R : Shards) {
    if (R.State == ShardState::Done) {
      Report.HealthyShardIndices.push_back(R.Shard.Index);
      Healthy.push_back(std::move(R.Result));
    } else if (R.State == ShardState::Quarantined) {
      QuarantinedShard Q;
      Q.Shard = R.Shard;
      Q.Failures = std::move(R.Failures);
      Report.Quarantined.push_back(std::move(Q));
    }
  }
  std::sort(Report.Quarantined.begin(), Report.Quarantined.end(),
            [](const QuarantinedShard &A, const QuarantinedShard &B) {
              return A.Shard.Index < B.Shard.Index;
            });
  std::sort(Report.HealthyShardIndices.begin(),
            Report.HealthyShardIndices.end());
  Report.Salvaged = static_cast<unsigned>(Healthy.size());
  CSalvaged.inc(Report.Salvaged);
  Report.Merged = mergeShardResults(ModelName, std::move(Healthy));

  if (!Opts.ResultDir.empty()) {
    std::string QErr;
    if (!writeFileAtomic(Opts.ResultDir + "/quarantine.json",
                         quarantineToJson(Report.Quarantined), &QErr)) {
      // The sidecar is forensics, not state: losing it costs nothing the
      // in-memory report does not still carry, so surface it as a typed
      // report field + durability-plane counter instead of failing a run
      // whose merge already succeeded.
      Report.QuarantineWriteError = QErr;
      static Counter &CQWriteFailed =
          M.counter("io.driver.quarantine_write_failures");
      CQWriteFailed.inc();
    }
  }

  if (Span.active()) {
    Span.arg(TraceArg::ofInt("shards", static_cast<int64_t>(Plan.size())));
    Span.arg(TraceArg::ofInt("spawned", Report.Spawned));
    Span.arg(TraceArg::ofInt("retried", Report.Retried));
    Span.arg(TraceArg::ofInt("reused", Report.Reused));
    Span.arg(TraceArg::ofInt("salvaged", Report.Salvaged));
    Span.arg(TraceArg::ofInt(
        "quarantined", static_cast<int64_t>(Report.Quarantined.size())));
    Span.arg(TraceArg::ofStr("model", ModelName));
  }
  return true;
}

//===--- Quarantine serialization & rendering ---------------------------------//

std::string quarantineToJson(const std::vector<QuarantinedShard> &Q) {
  std::ostringstream OS;
  OS << "{\"quarantined\":[";
  for (size_t I = 0; I < Q.size(); ++I) {
    if (I)
      OS << ",";
    const QuarantinedShard &S = Q[I];
    OS << "{\"index\":" << S.Shard.Index << ",\"begin\":" << S.Shard.Begin
       << ",\"end\":" << S.Shard.End << ",\"failures\":[";
    for (size_t J = 0; J < S.Failures.size(); ++J) {
      if (J)
        OS << ",";
      const ShardAttemptFailure &F = S.Failures[J];
      OS << "{\"attempt\":" << F.Attempt << ",\"class\":\""
         << failureClassName(F.Class)
         << "\",\"reason\":" << jsonString(F.Reason)
         << ",\"stderr\":" << jsonString(F.StderrTail) << "}";
    }
    OS << "]}";
  }
  OS << "]}\n";
  return OS.str();
}

std::string renderDriverReport(const EvalDriverReport &R) {
  std::ostringstream OS;
  OS << "evaluation driver: " << R.Salvaged << " salvaged ("
     << R.Reused << " reused), " << R.Quarantined.size()
     << " quarantined, " << R.Spawned << " workers spawned ("
     << R.Retried << " retries)\n";
  for (const QuarantinedShard &Q : R.Quarantined) {
    OS << "  QUARANTINED shard " << Q.Shard.Index << " [" << Q.Shard.Begin
       << ", " << Q.Shard.End << ")";
    if (!Q.Failures.empty())
      OS << " — last failure ["
         << failureClassName(Q.Failures.back().Class)
         << "]: " << Q.Failures.back().Reason;
    OS << "\n";
    for (const ShardAttemptFailure &F : Q.Failures)
      OS << "    attempt " << F.Attempt << " ["
         << failureClassName(F.Class) << "]: " << F.Reason << "\n";
  }
  if (!R.QuarantineWriteError.empty())
    OS << "  WARNING: quarantine.json not written ("
       << R.QuarantineWriteError << ") — diagnostics above are the only "
       << "copy\n";
  OS << renderTaxonomy("salvaged-shard taxonomy (healthy subset)",
                       R.Merged.Taxonomy);
  return OS.str();
}

} // namespace veriopt
