//===- Evaluation.cpp - The paper's evaluation harness -------------------------//

#include "pipeline/Evaluation.h"

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "support/AtomicFile.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "trace/Json.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"
#include "verify/AliveLite.h"
#include "verify/BatchVerifier.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace veriopt {

namespace {

/// Fill metric fields of \p E from the output function actually kept
/// (after fallback).
void fillMetrics(SampleEval &E, const Sample &S, const Function *Out) {
  E.LatO0 = estimateLatency(*S.source());
  E.ICountO0 = instructionCount(*S.source());
  E.SizeO0 = binarySize(*S.source());
  E.LatRef = estimateLatency(*S.Reference);
  E.ICountRef = instructionCount(*S.Reference);
  E.SizeRef = binarySize(*S.Reference);
  const Function *Kept = Out ? Out : S.source();
  E.LatOut = estimateLatency(*Kept);
  E.ICountOut = instructionCount(*Kept);
  E.SizeOut = binarySize(*Kept);
}

} // namespace

void recomputeAggregates(EvalResult &R) {
  auto fold = [](MetricAgg &Agg, auto Getter,
                 const std::vector<SampleEval> &Per) {
    Agg = MetricAgg();
    std::vector<double> Rel, Ratio;
    for (const SampleEval &E : Per) {
      auto [Base, Out] = Getter(E);
      if (Out < Base)
        ++Agg.Better;
      else if (Out > Base)
        ++Agg.Worse;
      else
        ++Agg.Tie;
      if (Base > 0) {
        Rel.push_back((Out - Base) / Base);
        Ratio.push_back(std::max(Out, 0.25) / Base);
      }
    }
    // Degenerate-corpus convention: with no positive-baseline sample there
    // is no change to report — 0.0 relative change and a neutral 1.0
    // geomean ratio, not the NaN/0 an empty mean/geomean would yield.
    Agg.MeanRelChange = Rel.empty() ? 0.0 : mean(Rel);
    Agg.GeoRatio = Ratio.empty() ? 1.0 : geomean(Ratio);
  };
  fold(R.Latency,
       [](const SampleEval &E) { return std::pair(E.LatO0, E.LatOut); },
       R.PerSample);
  fold(R.Size,
       [](const SampleEval &E) {
         return std::pair<double, double>(E.SizeO0, E.SizeOut);
       },
       R.PerSample);
  fold(R.ICount,
       [](const SampleEval &E) {
         return std::pair<double, double>(E.ICountO0, E.ICountOut);
       },
       R.PerSample);

  R.VsRefBetter = R.VsRefWorse = R.VsRefTie = 0;
  std::vector<double> Speedups, FallbackGain;
  for (const SampleEval &E : R.PerSample) {
    double Out = std::max(E.LatOut, 0.25);
    double Ref = std::max(E.LatRef, 0.25);
    Speedups.push_back(E.LatO0 > 0 ? std::max(E.LatO0, 0.25) / Out : 1.0);
    if (E.LatOut < E.LatRef)
      ++R.VsRefBetter;
    else if (E.LatOut > E.LatRef)
      ++R.VsRefWorse;
    else
      ++R.VsRefTie;
    FallbackGain.push_back(Ref / std::min(Out, Ref));
  }
  // Same convention for an empty corpus: a neutral 1.0 speedup and a 0.0
  // fallback gain (geomean(empty) is 0, which would report a nonsense
  // -100% gain).
  R.GeoSpeedupVsO0 = Speedups.empty() ? 1.0 : geomean(Speedups);
  R.FallbackGainOverRef =
      FallbackGain.empty() ? 0.0 : geomean(FallbackGain) - 1.0;
}

//===--- Per-sample core ------------------------------------------------------//

SampleEval evaluateCandidate(const Sample &S, const Completion &C,
                             const CandidateVerifier &Verify,
                             VerifyTaxonomy &Tax) {
  SampleEval E;
  ++Tax.Total;

  std::unique_ptr<Module> OutM;
  const Function *OutF = nullptr;
  VerifyResult VR;
  if (!C.FormatOk) {
    VR.Status = VerifyStatus::SyntaxError;
    VR.Kind = DiagKind::ParseError;
  } else {
    VR = Verify(S, C.AnswerIR);
    if (VR.equivalent()) {
      // An Equivalent verdict whose answer fails to reparse (a lying or
      // fault-injected verifier, or parser/verifier drift) must not be
      // trusted: classify as Inconclusive with a distinct diagnostic and
      // keep the -O0 fallback. The old assert() compiled out under NDEBUG
      // and ran takeValue() on the error state — UB.
      auto Parsed = parseModule(C.AnswerIR);
      if (!Parsed || !Parsed.value()->getMainFunction()) {
        VR = VerifyResult();
        VR.Status = VerifyStatus::Inconclusive;
        VR.Kind = DiagKind::ParseError;
        VR.Diagnostic = "Inconclusive: verifier reported Equivalent but the "
                        "candidate did not reparse; keeping the -O0 output\n";
      } else {
        OutM = Parsed.takeValue();
        OutF = OutM->getMainFunction();
      }
    }
  }
  E.Status = VR.Status;
  E.IsCopy = C.FormatOk && C.AnswerIR == S.SrcText;

  switch (VR.Status) {
  case VerifyStatus::Equivalent:
    ++Tax.Correct;
    Tax.CorrectCopies += E.IsCopy;
    break;
  case VerifyStatus::NotEquivalent:
    ++Tax.SemanticError;
    break;
  case VerifyStatus::SyntaxError:
    ++Tax.SyntaxError;
    break;
  case VerifyStatus::Inconclusive:
    ++Tax.Inconclusive;
    break;
  }

  // Fallback to -O0 when the output is not verifiably correct (§V-B).
  E.UsedFallback = OutF == nullptr;
  fillMetrics(E, S, OutF);
  return E;
}

//===--- Serial oracle --------------------------------------------------------//

EvalResult evaluateModel(const RewritePolicyModel &Model,
                         const std::vector<Sample> &Valid, PromptMode Mode,
                         const VerifyOptions &VOpts) {
  EvalResult R;
  R.ModelName = Model.config().Name;
  RNG Rng(0xE7A1); // greedy decoding ignores it; kept for API symmetry

  CandidateVerifier Verify = [&VOpts](const Sample &S,
                                      const std::string &Text) {
    return verifyCandidateText(*S.source(), Text, VOpts);
  };
  for (const Sample &S : Valid) {
    Completion C = Model.generate(*S.source(), Mode, Rng, /*Greedy=*/true);
    R.PerSample.push_back(evaluateCandidate(S, C, Verify, R.Taxonomy));
  }
  recomputeAggregates(R);
  return R;
}

EvalResult evaluateReferencePass(const std::vector<Sample> &Valid) {
  EvalResult R;
  R.ModelName = "instcombine";
  for (const Sample &S : Valid) {
    SampleEval E;
    ++R.Taxonomy.Total;
    ++R.Taxonomy.Correct; // pairs were filtered to be verified (§IV-A)
    E.Status = VerifyStatus::Equivalent;
    E.IsCopy = S.RefText == S.SrcText;
    R.Taxonomy.CorrectCopies += E.IsCopy;
    fillMetrics(E, S, S.Reference.get());
    R.PerSample.push_back(E);
  }
  recomputeAggregates(R);
  return R;
}

//===--- Sharding -------------------------------------------------------------//

uint64_t deriveShardSeed(uint64_t Seed, unsigned ShardIdx) {
  // SplitMix64 finalizer over (Seed, ShardIdx): shard streams are
  // independent of each other and of execution order.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (uint64_t(ShardIdx) + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

std::vector<EvalShard> planEvalShards(size_t N, unsigned Shards,
                                      uint64_t Seed) {
  if (Shards == 0)
    Shards = 1;
  std::vector<EvalShard> Plan(Shards);
  for (unsigned I = 0; I < Shards; ++I) {
    EvalShard &S = Plan[I];
    S.Index = I;
    S.Begin = N * I / Shards;
    S.End = N * (I + 1) / Shards;
    S.RngSeed = deriveShardSeed(Seed, I);
  }
  return Plan;
}

ShardEvalResult evaluateEvalShard(const RewritePolicyModel &Model,
                                  const std::vector<Sample> &Valid,
                                  PromptMode Mode, const VerifyOptions &VOpts,
                                  const EvalShard &Shard,
                                  const BatchVerifier *Batch) {
  TraceSpan Span("eval.shard");

  ShardEvalResult R;
  R.Shard = Shard;
  RNG Rng(Shard.RngSeed);

  CandidateVerifier Verify;
  if (Batch)
    Verify = [Batch](const Sample &S, const std::string &Text) {
      return Batch->verifyOne(S.SrcText, *S.source(), Text);
    };
  else
    Verify = [&VOpts](const Sample &S, const std::string &Text) {
      return verifyCandidateText(*S.source(), Text, VOpts);
    };

  const size_t End = std::min(Shard.End, Valid.size());
  for (size_t I = Shard.Begin; I < End; ++I) {
    const Sample &S = Valid[I];
    Completion C = Model.generate(*S.source(), Mode, Rng, /*Greedy=*/true);
    R.PerSample.push_back(evaluateCandidate(S, C, Verify, R.Taxonomy));
  }

  static Counter &ShardCount = MetricsRegistry::global().counter("eval.shards");
  static Counter &SampleCount =
      MetricsRegistry::global().counter("eval.samples");
  ShardCount.inc();
  SampleCount.inc(R.Taxonomy.Total);

  if (Span.active()) {
    Span.arg(TraceArg::ofInt("shard", Shard.Index));
    Span.arg(TraceArg::ofInt("begin", static_cast<int64_t>(Shard.Begin)));
    Span.arg(TraceArg::ofInt("end", static_cast<int64_t>(End)));
    Span.arg(TraceArg::ofInt("samples", R.Taxonomy.Total));
    Span.arg(TraceArg::ofInt("correct", R.Taxonomy.Correct));
    Span.arg(TraceArg::ofInt("semantic_error", R.Taxonomy.SemanticError));
    Span.arg(TraceArg::ofInt("syntax_error", R.Taxonomy.SyntaxError));
    Span.arg(TraceArg::ofInt("inconclusive", R.Taxonomy.Inconclusive));
  }
  return R;
}

EvalResult mergeShardResults(const std::string &ModelName,
                             std::vector<ShardEvalResult> Shards) {
  // Order-independent reduction: canonicalize on shard index first, so the
  // merged PerSample order equals corpus order no matter how the input was
  // produced (thread completion order, out-of-order process results, ...).
  std::sort(Shards.begin(), Shards.end(),
            [](const ShardEvalResult &A, const ShardEvalResult &B) {
              return A.Shard.Index < B.Shard.Index;
            });
  EvalResult R;
  R.ModelName = ModelName;
  for (ShardEvalResult &S : Shards) {
    R.Taxonomy.Total += S.Taxonomy.Total;
    R.Taxonomy.Correct += S.Taxonomy.Correct;
    R.Taxonomy.CorrectCopies += S.Taxonomy.CorrectCopies;
    R.Taxonomy.SemanticError += S.Taxonomy.SemanticError;
    R.Taxonomy.SyntaxError += S.Taxonomy.SyntaxError;
    R.Taxonomy.Inconclusive += S.Taxonomy.Inconclusive;
    for (SampleEval &E : S.PerSample)
      R.PerSample.push_back(E);
  }
  recomputeAggregates(R);
  return R;
}

namespace {

/// Bitwise double equality: differential checks require bit-identity, not
/// epsilon-closeness (-0.0 != 0.0, NaN == NaN, like memcmp).
bool bitEq(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

bool sameAgg(const MetricAgg &A, const MetricAgg &B) {
  return A.Better == B.Better && A.Worse == B.Worse && A.Tie == B.Tie &&
         bitEq(A.MeanRelChange, B.MeanRelChange) &&
         bitEq(A.GeoRatio, B.GeoRatio);
}

} // namespace

unsigned countResultDivergence(const EvalResult &A, const EvalResult &B) {
  unsigned D = 0;
  D += A.Taxonomy.Total != B.Taxonomy.Total;
  D += A.Taxonomy.Correct != B.Taxonomy.Correct;
  D += A.Taxonomy.CorrectCopies != B.Taxonomy.CorrectCopies;
  D += A.Taxonomy.SemanticError != B.Taxonomy.SemanticError;
  D += A.Taxonomy.SyntaxError != B.Taxonomy.SyntaxError;
  D += A.Taxonomy.Inconclusive != B.Taxonomy.Inconclusive;
  D += !sameAgg(A.Latency, B.Latency);
  D += !sameAgg(A.Size, B.Size);
  D += !sameAgg(A.ICount, B.ICount);
  D += !bitEq(A.GeoSpeedupVsO0, B.GeoSpeedupVsO0);
  D += !bitEq(A.FallbackGainOverRef, B.FallbackGainOverRef);
  D += A.VsRefBetter != B.VsRefBetter || A.VsRefWorse != B.VsRefWorse ||
       A.VsRefTie != B.VsRefTie;
  if (A.PerSample.size() != B.PerSample.size())
    return D + 1;
  for (size_t I = 0; I < A.PerSample.size(); ++I) {
    const SampleEval &X = A.PerSample[I], &Y = B.PerSample[I];
    D += X.Status != Y.Status || X.IsCopy != Y.IsCopy ||
         X.UsedFallback != Y.UsedFallback || !bitEq(X.LatOut, Y.LatOut) ||
         !bitEq(X.LatO0, Y.LatO0) || !bitEq(X.LatRef, Y.LatRef) ||
         X.ICountOut != Y.ICountOut || X.SizeOut != Y.SizeOut;
  }
  return D;
}

EvalResult evaluateModelSharded(const RewritePolicyModel &Model,
                                const std::vector<Sample> &Valid,
                                PromptMode Mode, const VerifyOptions &VOpts,
                                const EvalOptions &EOpts) {
  TraceSpan Span("eval.run");

  unsigned Shards = EOpts.Shards;
  if (Shards == 0)
    Shards = EOpts.Pool ? EOpts.Pool->numThreads() : 1;
  std::vector<EvalShard> Plan = planEvalShards(Valid.size(), Shards,
                                               EOpts.Seed);
  // Failed artifact writes are counted, not fatal: the in-process result
  // does not depend on the disk, and a worker fleet pointed at a missing
  // manifest/result file fails with its own typed errors.
  unsigned IoErrors = 0;
  static Counter &CWriteFailed =
      MetricsRegistry::global().counter("io.eval.write_failures");
  if (!EOpts.ShardManifestPath.empty() &&
      !writeFileAtomic(EOpts.ShardManifestPath,
                       shardManifestToJson(Plan, EOpts.Seed, Valid.size()))) {
    ++IoErrors;
    CWriteFailed.inc();
  }

  // One shared cache + BatchVerifier context for the whole run: shards are
  // parallelized at shard granularity (the group-level fan-out stays off —
  // ThreadPool jobs are not reentrant), and the cache's single-flight keeps
  // duplicate (source, candidate) pairs across shards from paying twice.
  std::unique_ptr<VerifyCache> Cache;
  std::unique_ptr<BatchVerifier> BV;
  if (EOpts.BatchVerify) {
    VerifyCache *C = EOpts.SharedCache;
    if (!C) {
      Cache = std::make_unique<VerifyCache>(EOpts.VerifyCacheCapacity);
      C = Cache.get();
    }
    if (EOpts.Faults)
      C->setFaultInjector(EOpts.Faults);
    if (EOpts.VerdictTier)
      C->setBackingStore(EOpts.VerdictTier);
    BatchVerifier::Options BO;
    BO.Robust.Base = VOpts;
    BO.Robust.MaxTiers = 1; // evaluation runs one fixed budget, no ladder
    BO.Pool = nullptr;
    BO.Threads = 1;
    BV = std::make_unique<BatchVerifier>(BO, C, EOpts.Faults);
  }

  std::vector<ShardEvalResult> Results(Plan.size());
  auto RunShard = [&](size_t I) {
    Results[I] =
        evaluateEvalShard(Model, Valid, Mode, VOpts, Plan[I], BV.get());
  };
  if (EOpts.Pool && EOpts.Pool->numThreads() > 1 && Plan.size() > 1)
    EOpts.Pool->parallelFor(Plan.size(), RunShard);
  else
    for (size_t I = 0; I < Plan.size(); ++I)
      RunShard(I);

  if (!EOpts.ShardResultDir.empty())
    for (const ShardEvalResult &S : Results)
      if (!writeFileAtomic(EOpts.ShardResultDir + "/shard_" +
                               std::to_string(S.Shard.Index) + ".json",
                           shardResultToJson(S))) {
        ++IoErrors;
        CWriteFailed.inc();
      }

  EvalResult R = mergeShardResults(Model.config().Name, std::move(Results));
  R.IoErrors = IoErrors;
  if (Span.active()) {
    Span.arg(TraceArg::ofInt("shards", static_cast<int64_t>(Plan.size())));
    Span.arg(TraceArg::ofInt("samples", R.Taxonomy.Total));
    Span.arg(TraceArg::ofInt("correct", R.Taxonomy.Correct));
    Span.arg(TraceArg::ofInt("inconclusive", R.Taxonomy.Inconclusive));
    Span.arg(TraceArg::ofStr("model", R.ModelName));
    Span.arg(TraceArg::ofBool("batch_verify", EOpts.BatchVerify));
    // Pool width shapes the schedule, not the result.
    Span.meta(TraceArg::ofInt(
        "threads", EOpts.Pool ? EOpts.Pool->numThreads() : 1));
  }
  return R;
}

//===--- Shard serialization --------------------------------------------------//

namespace {

/// IEEE-754 bit-hex for doubles (the checkpoint discipline): JSON numeric
/// round-trips are not bit-exact in general; these are.
std::string dhex(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Bits));
  return Buf;
}

bool dunhex(const std::string &S, double &D) {
  if (S.size() != 16)
    return false;
  uint64_t Bits = 0;
  for (char C : S) {
    Bits <<= 4;
    if (C >= '0' && C <= '9')
      Bits |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Bits |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  std::memcpy(&D, &Bits, sizeof(D));
  return true;
}

bool jsonU64(const JsonValue &O, const char *Key, uint64_t &Out) {
  const JsonValue *V = O.get(Key);
  // Reject negatives AND non-integers: a count field of 1.5 (bit rot,
  // hand-edited file) must be a typed parse error, not a silent truncation.
  if (!V || !V->isNumber() || V->number() < 0 ||
      V->number() != std::floor(V->number()))
    return false;
  Out = static_cast<uint64_t>(V->number());
  return true;
}

bool jsonDhex(const JsonValue &O, const char *Key, double &Out) {
  const JsonValue *V = O.get(Key);
  return V && V->isString() && dunhex(V->str(), Out);
}

bool shardFromJsonObject(const JsonValue &O, EvalShard &S) {
  uint64_t Index = 0, Begin = 0, End = 0;
  if (!jsonU64(O, "index", Index) || !jsonU64(O, "begin", Begin) ||
      !jsonU64(O, "end", End))
    return false;
  const JsonValue *Seed = O.get("rng_seed");
  if (!Seed || !Seed->isString())
    return false;
  double SeedD;
  if (!dunhex(Seed->str(), SeedD))
    return false;
  S.Index = static_cast<unsigned>(Index);
  S.Begin = static_cast<size_t>(Begin);
  S.End = static_cast<size_t>(End);
  std::memcpy(&S.RngSeed, &SeedD, sizeof(S.RngSeed));
  return true;
}

void shardToJson(std::ostringstream &OS, const EvalShard &S) {
  // rng_seed is a full uint64, which a JSON double cannot carry exactly —
  // reuse the bit-hex channel.
  double SeedD;
  std::memcpy(&SeedD, &S.RngSeed, sizeof(SeedD));
  OS << "{\"index\":" << S.Index << ",\"begin\":" << S.Begin
     << ",\"end\":" << S.End << ",\"rng_seed\":" << jsonString(dhex(SeedD))
     << "}";
}

} // namespace

std::string shardManifestToJson(const std::vector<EvalShard> &Plan,
                                uint64_t Seed, size_t Samples) {
  std::ostringstream OS;
  double SeedD;
  std::memcpy(&SeedD, &Seed, sizeof(SeedD));
  OS << "{\"seed\":" << jsonString(dhex(SeedD)) << ",\"samples\":" << Samples
     << ",\"shards\":[";
  for (size_t I = 0; I < Plan.size(); ++I) {
    if (I)
      OS << ",";
    shardToJson(OS, Plan[I]);
  }
  OS << "]}\n";
  return OS.str();
}

bool shardManifestFromJson(const std::string &Text,
                           std::vector<EvalShard> &Plan, std::string *Err) {
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  const JsonValue *Shards = V.get("shards");
  if (!Shards || !Shards->isArray()) {
    if (Err)
      *Err = "manifest missing 'shards' array";
    return false;
  }
  Plan.clear();
  for (const JsonValue &E : Shards->array()) {
    EvalShard S;
    if (!shardFromJsonObject(E, S)) {
      if (Err)
        *Err = "malformed shard entry";
      return false;
    }
    Plan.push_back(S);
  }
  return true;
}

std::string shardResultToJson(const ShardEvalResult &R) {
  std::ostringstream OS;
  OS << "{\"shard\":";
  shardToJson(OS, R.Shard);
  const VerifyTaxonomy &T = R.Taxonomy;
  OS << ",\"taxonomy\":{\"total\":" << T.Total << ",\"correct\":" << T.Correct
     << ",\"correct_copies\":" << T.CorrectCopies
     << ",\"semantic_error\":" << T.SemanticError
     << ",\"syntax_error\":" << T.SyntaxError
     << ",\"inconclusive\":" << T.Inconclusive << "}";
  OS << ",\"per_sample\":[";
  for (size_t I = 0; I < R.PerSample.size(); ++I) {
    const SampleEval &E = R.PerSample[I];
    if (I)
      OS << ",";
    OS << "{\"status\":" << jsonString(verifyStatusName(E.Status))
       << ",\"is_copy\":" << (E.IsCopy ? "true" : "false")
       << ",\"used_fallback\":" << (E.UsedFallback ? "true" : "false")
       << ",\"lat_o0\":" << jsonString(dhex(E.LatO0))
       << ",\"lat_out\":" << jsonString(dhex(E.LatOut))
       << ",\"lat_ref\":" << jsonString(dhex(E.LatRef))
       << ",\"icount_o0\":" << E.ICountO0 << ",\"icount_out\":" << E.ICountOut
       << ",\"icount_ref\":" << E.ICountRef << ",\"size_o0\":" << E.SizeO0
       << ",\"size_out\":" << E.SizeOut << ",\"size_ref\":" << E.SizeRef
       << "}";
  }
  OS << "]}\n";
  return OS.str();
}

bool shardResultFromJson(const std::string &Text, ShardEvalResult &R,
                         std::string *Err) {
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  auto fail = [&](const char *Why) {
    if (Err)
      *Err = Why;
    return false;
  };
  const JsonValue *Shard = V.get("shard");
  if (!Shard || !shardFromJsonObject(*Shard, R.Shard))
    return fail("malformed 'shard' object");

  const JsonValue *Tax = V.get("taxonomy");
  if (!Tax || !Tax->isObject())
    return fail("missing 'taxonomy' object");
  uint64_t U = 0;
  auto taxField = [&](const char *Key, unsigned &Out) {
    if (!jsonU64(*Tax, Key, U))
      return false;
    Out = static_cast<unsigned>(U);
    return true;
  };
  VerifyTaxonomy &T = R.Taxonomy;
  if (!taxField("total", T.Total) || !taxField("correct", T.Correct) ||
      !taxField("correct_copies", T.CorrectCopies) ||
      !taxField("semantic_error", T.SemanticError) ||
      !taxField("syntax_error", T.SyntaxError) ||
      !taxField("inconclusive", T.Inconclusive))
    return fail("malformed 'taxonomy' object");

  const JsonValue *Per = V.get("per_sample");
  if (!Per || !Per->isArray())
    return fail("missing 'per_sample' array");
  R.PerSample.clear();
  for (const JsonValue &EJ : Per->array()) {
    SampleEval E;
    const JsonValue *Status = EJ.get("status");
    if (!Status || !Status->isString())
      return fail("sample missing 'status'");
    bool Known = false;
    for (VerifyStatus S :
         {VerifyStatus::Equivalent, VerifyStatus::NotEquivalent,
          VerifyStatus::SyntaxError, VerifyStatus::Inconclusive})
      if (Status->str() == verifyStatusName(S)) {
        E.Status = S;
        Known = true;
      }
    if (!Known)
      return fail("unknown sample 'status'");
    const JsonValue *Copy = EJ.get("is_copy");
    const JsonValue *Fallback = EJ.get("used_fallback");
    if (!Copy || !Copy->isBool() || !Fallback || !Fallback->isBool())
      return fail("sample missing boolean fields");
    E.IsCopy = Copy->boolean();
    E.UsedFallback = Fallback->boolean();
    if (!jsonDhex(EJ, "lat_o0", E.LatO0) ||
        !jsonDhex(EJ, "lat_out", E.LatOut) ||
        !jsonDhex(EJ, "lat_ref", E.LatRef))
      return fail("sample missing latency bit-hex fields");
    auto u32Field = [&](const char *Key, unsigned &Out) {
      if (!jsonU64(EJ, Key, U))
        return false;
      Out = static_cast<unsigned>(U);
      return true;
    };
    if (!u32Field("icount_o0", E.ICountO0) ||
        !u32Field("icount_out", E.ICountOut) ||
        !u32Field("icount_ref", E.ICountRef) ||
        !u32Field("size_o0", E.SizeO0) || !u32Field("size_out", E.SizeOut) ||
        !u32Field("size_ref", E.SizeRef))
      return fail("sample missing count fields");
    R.PerSample.push_back(E);
  }

  // Internal consistency: a truncated-but-still-valid-JSON file (fewer
  // per_sample entries than the taxonomy claims) or bit-rotted counts must
  // be a typed error — the driver treats it as a failed attempt, never
  // merges it.
  if (T.Total != R.PerSample.size())
    return fail("taxonomy total does not match per_sample length");
  if (T.Correct + T.SemanticError + T.SyntaxError + T.Inconclusive !=
      T.Total)
    return fail("taxonomy counts do not sum to total");
  if (T.CorrectCopies > T.Correct)
    return fail("correct_copies exceeds correct");
  if (R.Shard.End < R.Shard.Begin)
    return fail("shard range is inverted");
  return true;
}

//===--- Rendering ------------------------------------------------------------//

std::string renderTaxonomy(const std::string &Title,
                           const VerifyTaxonomy &T) {
  std::ostringstream OS;
  OS << Title << "\n";
  OS << "  Category                         Count   Proportion (%)\n";
  auto Row = [&](const char *Name, unsigned N) {
    OS << "  " << Name;
    for (size_t Pad = std::string(Name).size(); Pad < 33; ++Pad)
      OS << ' ';
    char Buf[64];
    // pct() renders an empty split as 0.0 for every row (never NaN/inf).
    snprintf(Buf, sizeof(Buf), "%5u   %5.1f\n", N, T.pct(N));
    OS << Buf;
  };
  Row("Correct (verified)", T.Correct);
  Row("- Copy of input (no optimization)", T.CorrectCopies);
  Row("Semantic Error (Not Equivalent)", T.SemanticError);
  Row("Syntax Error (Invalid IR)", T.SyntaxError);
  Row("Inconclusive", T.Inconclusive);
  return OS.str();
}

} // namespace veriopt
