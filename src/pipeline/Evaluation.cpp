//===- Evaluation.cpp - The paper's evaluation harness -------------------------//

#include "pipeline/Evaluation.h"

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "support/Stats.h"
#include "verify/AliveLite.h"

#include <cmath>
#include <sstream>

namespace veriopt {

namespace {

/// Fill metric fields of \p E from the output function actually kept
/// (after fallback).
void fillMetrics(SampleEval &E, const Sample &S, const Function *Out) {
  E.LatO0 = estimateLatency(*S.source());
  E.ICountO0 = instructionCount(*S.source());
  E.SizeO0 = binarySize(*S.source());
  E.LatRef = estimateLatency(*S.Reference);
  E.ICountRef = instructionCount(*S.Reference);
  E.SizeRef = binarySize(*S.Reference);
  const Function *Kept = Out ? Out : S.source();
  E.LatOut = estimateLatency(*Kept);
  E.ICountOut = instructionCount(*Kept);
  E.SizeOut = binarySize(*Kept);
}

void aggregate(EvalResult &R) {
  auto fold = [](MetricAgg &Agg, auto Getter,
                 const std::vector<SampleEval> &Per) {
    std::vector<double> Rel, Ratio;
    for (const SampleEval &E : Per) {
      auto [Base, Out] = Getter(E);
      if (Out < Base)
        ++Agg.Better;
      else if (Out > Base)
        ++Agg.Worse;
      else
        ++Agg.Tie;
      if (Base > 0) {
        Rel.push_back((Out - Base) / Base);
        Ratio.push_back(std::max(Out, 0.25) / Base);
      }
    }
    Agg.MeanRelChange = mean(Rel);
    Agg.GeoRatio = geomean(Ratio);
  };
  fold(R.Latency,
       [](const SampleEval &E) { return std::pair(E.LatO0, E.LatOut); },
       R.PerSample);
  fold(R.Size,
       [](const SampleEval &E) {
         return std::pair<double, double>(E.SizeO0, E.SizeOut);
       },
       R.PerSample);
  fold(R.ICount,
       [](const SampleEval &E) {
         return std::pair<double, double>(E.ICountO0, E.ICountOut);
       },
       R.PerSample);

  std::vector<double> Speedups, FallbackGain;
  for (const SampleEval &E : R.PerSample) {
    double Out = std::max(E.LatOut, 0.25);
    double Ref = std::max(E.LatRef, 0.25);
    Speedups.push_back(E.LatO0 > 0 ? std::max(E.LatO0, 0.25) / Out : 1.0);
    if (E.LatOut < E.LatRef)
      ++R.VsRefBetter;
    else if (E.LatOut > E.LatRef)
      ++R.VsRefWorse;
    else
      ++R.VsRefTie;
    FallbackGain.push_back(Ref / std::min(Out, Ref));
  }
  R.GeoSpeedupVsO0 = geomean(Speedups);
  R.FallbackGainOverRef = geomean(FallbackGain) - 1.0;
}

} // namespace

EvalResult evaluateModel(const RewritePolicyModel &Model,
                         const std::vector<Sample> &Valid, PromptMode Mode,
                         const VerifyOptions &VOpts) {
  EvalResult R;
  R.ModelName = Model.config().Name;
  RNG Rng(0xE7A1); // greedy decoding ignores it; kept for API symmetry

  for (const Sample &S : Valid) {
    Completion C = Model.generate(*S.source(), Mode, Rng, /*Greedy=*/true);
    SampleEval E;
    ++R.Taxonomy.Total;

    std::unique_ptr<Module> OutM;
    const Function *OutF = nullptr;
    VerifyResult VR;
    if (!C.FormatOk) {
      VR.Status = VerifyStatus::SyntaxError;
      VR.Kind = DiagKind::ParseError;
    } else {
      VR = verifyCandidateText(*S.source(), C.AnswerIR, VOpts);
      if (VR.equivalent()) {
        auto Parsed = parseModule(C.AnswerIR);
        assert(Parsed && "equivalent answer must parse");
        OutM = Parsed.takeValue();
        OutF = OutM->getMainFunction();
      }
    }
    E.Status = VR.Status;
    E.IsCopy = C.FormatOk && C.AnswerIR == S.SrcText;

    switch (VR.Status) {
    case VerifyStatus::Equivalent:
      ++R.Taxonomy.Correct;
      R.Taxonomy.CorrectCopies += E.IsCopy;
      break;
    case VerifyStatus::NotEquivalent:
      ++R.Taxonomy.SemanticError;
      break;
    case VerifyStatus::SyntaxError:
      ++R.Taxonomy.SyntaxError;
      break;
    case VerifyStatus::Inconclusive:
      ++R.Taxonomy.Inconclusive;
      break;
    }

    // Fallback to -O0 when the output is not verifiably correct (§V-B).
    E.UsedFallback = OutF == nullptr;
    fillMetrics(E, S, OutF);
    R.PerSample.push_back(E);
  }
  aggregate(R);
  return R;
}

EvalResult evaluateReferencePass(const std::vector<Sample> &Valid) {
  EvalResult R;
  R.ModelName = "instcombine";
  for (const Sample &S : Valid) {
    SampleEval E;
    ++R.Taxonomy.Total;
    ++R.Taxonomy.Correct; // pairs were filtered to be verified (§IV-A)
    E.Status = VerifyStatus::Equivalent;
    E.IsCopy = S.RefText == S.SrcText;
    R.Taxonomy.CorrectCopies += E.IsCopy;
    fillMetrics(E, S, S.Reference.get());
    R.PerSample.push_back(E);
  }
  aggregate(R);
  return R;
}

std::string renderTaxonomy(const std::string &Title,
                           const VerifyTaxonomy &T) {
  std::ostringstream OS;
  OS << Title << "\n";
  OS << "  Category                         Count   Proportion (%)\n";
  auto Row = [&](const char *Name, unsigned N) {
    OS << "  " << Name;
    for (size_t Pad = std::string(Name).size(); Pad < 33; ++Pad)
      OS << ' ';
    char Buf[64];
    snprintf(Buf, sizeof(Buf), "%5u   %5.1f\n", N, T.pct(N));
    OS << Buf;
  };
  Row("Correct (verified)", T.Correct);
  Row("- Copy of input (no optimization)", T.CorrectCopies);
  Row("Semantic Error (Not Equivalent)", T.SemanticError);
  Row("Syntax Error (Invalid IR)", T.SyntaxError);
  Row("Inconclusive", T.Inconclusive);
  return OS.str();
}

} // namespace veriopt
