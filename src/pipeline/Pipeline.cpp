//===- Pipeline.cpp - The four-model training pipeline ------------------------//

#include "pipeline/Pipeline.h"

namespace veriopt {

RewardFn makeAnswerReward(const VerifyOptions &VOpts, VerifyCache *Cache) {
  return [VOpts, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    RolloutScore Score;
    Score.Reward = B.Total;
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

RewardFn makeCorrectnessReward(const VerifyOptions &VOpts, VerifyCache *Cache) {
  return [VOpts, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    VerifyResult AttemptV = verifyAttempt(S, C, VOpts, Cache);
    RolloutScore Score;
    Score.Reward = B.Total + cotReward(C, AttemptV);
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

RewardFn makeLatencyReward(const VerifyOptions &VOpts,
                           const LatencyRewardParams &P, VerifyCache *Cache) {
  return [VOpts, P, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    RolloutScore Score;
    // Eq. (4): equivalence-gated shaped speedup. Alive2 stays in the loop
    // as the gate even though the instcombine labels are gone.
    Score.Reward = latencyReward(S, C, B.Equivalent, P);
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

static void foldStageLog(PipelineArtifacts &Art,
                         const std::vector<TrainLogEntry> &Log) {
  for (const TrainLogEntry &E : Log) {
    Art.ScoreWallMs += E.ScoreWallMs;
    Art.FalsifyWins += E.FalsifyWins;
    Art.SolverConflicts += E.SolverConflicts;
  }
}

PipelineArtifacts runTrainingPipeline(const Dataset &DS,
                                      const PipelineOptions &Opts) {
  PipelineArtifacts Art;
  Art.Base = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  Art.UMax = computeUMax(DS.Train);

  // One scoring pool and one verification memo serve all three GRPO stages
  // (the cache key carries the budget, so sharing across stages is sound).
  ThreadPool Pool(Opts.Threads);
  std::unique_ptr<VerifyCache> Cache;
  if (Opts.VerifyCacheCapacity)
    Cache = std::make_unique<VerifyCache>(Opts.VerifyCacheCapacity);

  GRPOOptions GBase = Opts.GRPO;
  GBase.Threads = Opts.Threads;
  GBase.Pool = &Pool;
  GBase.Cache = Cache.get();

  //===--- Stage 1: MODEL-ZERO + diagnostic-augmented sample harvesting ----===//

  Art.ModelZero = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  {
    GRPOOptions G = GBase;
    G.Mode = PromptMode::Generic;
    G.Seed = Opts.Seed * 3 + 1;
    // Every failed rollout becomes a correction-augmented sample (wrong
    // attempt, Alive verdict class, oracle target) — the model-adaptive
    // dataset of §III-C1. The harvest runs in the sequential OnRollout hook,
    // not inside the reward, so the SFT set is identical at any thread
    // count (and needs no locking).
    RewritePolicyModel *Zero = Art.ModelZero.get();
    G.OnRollout = [&Art, Zero](const Sample &S, const Completion &C,
                               const RolloutScore &Score) {
      bool Failed = Score.AnswerVerify.Status == VerifyStatus::SyntaxError ||
                    Score.AnswerVerify.Status == VerifyStatus::NotEquivalent;
      // Cap harvesting so a few hard prompts do not dominate the SFT set.
      if (Failed && Art.Augmented.size() < 4 * 1024) {
        SFTExample Ex;
        Ex.S = &S;
        Ex.TargetActions = oracleActions(S.RefTrace, *Zero);
        Ex.IsCorrection = true;
        Ex.AttemptActions = C.Actions;
        Ex.DiagClassTarget = diagKindClass(Score.AnswerVerify.Kind);
        Art.Augmented.push_back(std::move(Ex));
        ++Art.CorrectionSamples;
      }
    };
    GRPOTrainer Trainer(*Art.ModelZero,
                        makeAnswerReward(Opts.TrainVerify, Cache.get()), G);
    Art.Stage1Log = Trainer.train(DS.Train, Opts.Stage1Steps);
  }

  // First-time augmented samples: the plain O0 -> instcombine pairs.
  for (const Sample &S : DS.Train) {
    SFTExample Ex;
    Ex.S = &S;
    Ex.TargetActions = oracleActions(S.RefTrace, *Art.ModelZero);
    Ex.IsCorrection = false;
    Ex.DiagClassTarget = 0; // a clean attempt verifies
    Art.Augmented.push_back(std::move(Ex));
    ++Art.FirstTimeSamples;
  }

  //===--- Stage 2: WARM-UP SFT, then GRPO -> MODEL-CORRECTNESS -----------===//

  // SFT starts from the pretrained base model (Fig. 3), not MODEL-ZERO.
  Art.WarmUp = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  {
    SFTOptions SFT = Opts.SFT;
    SFT.Epochs = Opts.Stage2SFTEpochs;
    SFT.LearningRate = Opts.Stage2SFTLearningRate;
    SFT.Seed = Opts.Seed * 5 + 2;
    sftTrain(*Art.WarmUp, Art.Augmented, SFT);
  }

  Art.Correctness = std::make_unique<RewritePolicyModel>(*Art.WarmUp);
  {
    GRPOOptions G = GBase;
    G.Mode = PromptMode::Augmented;
    G.Seed = Opts.Seed * 7 + 3;
    GRPOTrainer Trainer(
        *Art.Correctness,
        makeCorrectnessReward(Opts.TrainVerify, Cache.get()), G);
    Art.Stage2Log = Trainer.train(DS.Train, Opts.Stage2Steps);
  }

  //===--- Stage 3: incremental latency GRPO -> MODEL-LATENCY -------------===//

  Art.Latency = std::make_unique<RewritePolicyModel>(*Art.Correctness);
  {
    LatencyRewardParams P;
    P.UMax = Art.UMax;
    GRPOOptions G = GBase;
    G.Mode = PromptMode::Generic; // the <think> section is dropped (§III-C3)
    G.Temperature = Opts.Stage3Temperature;
    G.LearningRate = Opts.Stage3LearningRate;
    G.Seed = Opts.Seed * 11 + 4;
    GRPOTrainer Trainer(*Art.Latency,
                        makeLatencyReward(Opts.TrainVerify, P, Cache.get()),
                        G);
    Art.Stage3Log = Trainer.train(DS.Train, Opts.Stage3Steps);
  }

  foldStageLog(Art, Art.Stage1Log);
  foldStageLog(Art, Art.Stage2Log);
  foldStageLog(Art, Art.Stage3Log);
  if (Cache) {
    VerifyCache::Counters C = Cache->counters();
    Art.VerifyCacheHits = C.Hits;
    Art.VerifyCacheMisses = C.Misses;
    Art.VerifyCacheEvictions = C.Evictions;
  }

  return Art;
}

} // namespace veriopt
