//===- Pipeline.cpp - The four-model training pipeline ------------------------//

#include "pipeline/Pipeline.h"

#include "pipeline/EvalDriver.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"
#include "verify/BatchVerifier.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace veriopt {

static RolloutScore scoreFromBreakdown(const RewardBreakdown &B,
                                       double Reward) {
  RolloutScore Score;
  Score.Reward = Reward;
  Score.Equivalent = B.Equivalent;
  Score.ExactMatch = B.ExactMatch;
  Score.IsCopy = B.IsCopy;
  Score.AnswerVerify = B.Verify;
  return Score;
}

RewardFn makeAnswerReward(const VerifyOptions &VOpts, VerifyCache *Cache) {
  return [VOpts, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    return scoreFromBreakdown(B, B.Total);
  };
}

RewardFn makeCorrectnessReward(const VerifyOptions &VOpts, VerifyCache *Cache) {
  return [VOpts, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    VerifyResult AttemptV = verifyAttempt(S, C, VOpts, Cache);
    return scoreFromBreakdown(B, B.Total + cotReward(C, AttemptV));
  };
}

RewardFn makeLatencyReward(const VerifyOptions &VOpts,
                           const LatencyRewardParams &P, VerifyCache *Cache) {
  return [VOpts, P, Cache](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts, Cache);
    // Eq. (4): equivalence-gated shaped speedup. Alive2 stays in the loop
    // as the gate even though the instcombine labels are gone.
    return scoreFromBreakdown(B, latencyReward(S, C, B.Equivalent, P));
  };
}

RewardFn makeAnswerReward(const RobustVerifier &RV) {
  const RobustVerifier *V = &RV;
  return [V](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, *V);
    return scoreFromBreakdown(B, B.Total);
  };
}

RewardFn makeCorrectnessReward(const RobustVerifier &RV) {
  const RobustVerifier *V = &RV;
  return [V](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, *V);
    VerifyResult AttemptV = verifyAttempt(S, C, *V);
    return scoreFromBreakdown(B, B.Total + cotReward(C, AttemptV));
  };
}

RewardFn makeLatencyReward(const RobustVerifier &RV,
                           const LatencyRewardParams &P) {
  const RobustVerifier *V = &RV;
  return [V, P](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, *V);
    return scoreFromBreakdown(B, latencyReward(S, C, B.Equivalent, P));
  };
}

static void foldStageLog(PipelineArtifacts &Art,
                         const std::vector<TrainLogEntry> &Log) {
  for (const TrainLogEntry &E : Log) {
    Art.ScoreWallMs += E.ScoreWallMs;
    Art.FalsifyWins += E.FalsifyWins;
    Art.SolverConflicts += E.SolverConflicts;
    Art.RetryEscalations += E.RetryEscalations;
    Art.TerminalInconclusive += E.TerminalInconclusive;
  }
}

//===--- Checkpoint plumbing -------------------------------------------------//

static std::vector<unsigned> encodeActions(const std::vector<Action> &A) {
  std::vector<unsigned> Out;
  Out.reserve(A.size());
  for (Action X : A)
    Out.push_back(static_cast<unsigned>(X));
  return Out;
}

static std::vector<Action> decodeActions(const std::vector<unsigned> &A) {
  std::vector<Action> Out;
  Out.reserve(A.size());
  for (unsigned X : A)
    Out.push_back(static_cast<Action>(X));
  return Out;
}

/// Detach the harvested SFT set from Sample pointers for serialization.
static void captureAugmented(PipelineCheckpoint &CP,
                             const PipelineArtifacts &Art, const Dataset &DS) {
  CP.Augmented.clear();
  CP.Augmented.reserve(Art.Augmented.size());
  for (const SFTExample &Ex : Art.Augmented) {
    AugmentedRecord R;
    R.SampleIdx = static_cast<unsigned>(Ex.S - DS.Train.data());
    R.TargetActions = encodeActions(Ex.TargetActions);
    R.IsCorrection = Ex.IsCorrection;
    R.AttemptActions = encodeActions(Ex.AttemptActions);
    R.DiagClass = Ex.DiagClassTarget;
    CP.Augmented.push_back(std::move(R));
  }
  CP.CorrectionSamples = Art.CorrectionSamples;
  CP.FirstTimeSamples = Art.FirstTimeSamples;
}

/// Re-bind checkpointed SFT records to this run's dataset.
static void rebuildAugmented(PipelineArtifacts &Art,
                             const PipelineCheckpoint &CP, const Dataset &DS) {
  Art.Augmented.clear();
  Art.Augmented.reserve(CP.Augmented.size());
  for (const AugmentedRecord &R : CP.Augmented) {
    if (R.SampleIdx >= DS.Train.size())
      continue; // checkpoint from a different dataset; drop defensively
    SFTExample Ex;
    Ex.S = &DS.Train[R.SampleIdx];
    Ex.TargetActions = decodeActions(R.TargetActions);
    Ex.IsCorrection = R.IsCorrection;
    Ex.AttemptActions = decodeActions(R.AttemptActions);
    Ex.DiagClassTarget = R.DiagClass;
    Art.Augmented.push_back(std::move(Ex));
  }
  Art.CorrectionSamples = CP.CorrectionSamples;
  Art.FirstTimeSamples = CP.FirstTimeSamples;
}

PipelineArtifacts runTrainingPipeline(const Dataset &DS,
                                      const PipelineOptions &Opts) {
  TraceSpan RunSpan("pipeline.run");
  RunSpan.arg(TraceArg::ofInt("seed", static_cast<int64_t>(Opts.Seed)));
  // Thread count shapes the schedule, not the result — nondeterministic
  // plane by convention, so traces at different widths stay diffable.
  RunSpan.meta(TraceArg::ofInt("threads", Opts.Threads));

  PipelineArtifacts Art;
  Art.Base = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  Art.UMax = computeUMax(DS.Train);

  // One scoring pool and one verification memo serve all three GRPO stages
  // (the cache key carries the budget, so sharing across stages is sound).
  ThreadPool Pool(Opts.Threads);
  std::unique_ptr<VerifyCache> Cache;
  if (Opts.VerifyCacheCapacity) {
    Cache = std::make_unique<VerifyCache>(Opts.VerifyCacheCapacity);
    if (Opts.Faults)
      Cache->setFaultInjector(Opts.Faults);
    // Durable tier under the memo: warm-store training replays verdicts
    // instead of recomputing them, bit-identically (the cache bypasses the
    // tier while a fault injector is attached — see docs/PERSISTENCE.md).
    if (Opts.VerdictTier)
      Cache->setBackingStore(Opts.VerdictTier);
  }

  // All training verification goes through the escalating retry ladder.
  // With one tier this is exactly the plain single-budget verifier.
  RobustVerifyOptions RVO;
  RVO.Base = Opts.TrainVerify;
  RVO.MaxTiers = std::max(1u, Opts.VerifyRetryTiers);
  RVO.BudgetGrowth = Opts.VerifyRetryGrowth;
  RobustVerifier RV(RVO, Cache.get(), Opts.Faults);

  GRPOOptions GBase = Opts.GRPO;
  GBase.Threads = Opts.Threads;
  GBase.Pool = &Pool;
  GBase.Cache = Cache.get();

  // Batched group verification: pre-verify each prompt group through one
  // shared solver context, seeding the cache the reward replays from.
  // Shares the ladder configuration with RV so cache keys line up.
  BatchVerifier::Options BO;
  BO.Robust = RVO;
  BO.Pool = &Pool;
  BO.Threads = Opts.Threads;
  BatchVerifier BV(BO, Cache.get(), Opts.Faults);
  GBase.Batch = (Opts.BatchVerify && Cache) ? &BV : nullptr;

  //===--- Resume --------------------------------------------------------===//

  PipelineCheckpoint CP;
  bool Resumed = false;
  if (Opts.Resume && !Opts.CheckpointPath.empty()) {
    PipelineCheckpoint Loaded;
    if (loadCheckpoint(Opts.CheckpointPath, Loaded) &&
        Loaded.Seed == Opts.Seed) {
      CP = std::move(Loaded);
      Resumed = true;
    }
  }
  const unsigned StartStage = Resumed ? CP.StageIdx : 0;

  auto modelFromParams =
      [&](const std::vector<double> &P) -> std::unique_ptr<RewritePolicyModel> {
    if (P.empty())
      return nullptr;
    auto M = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
    if (P.size() == M->numParams())
      M->params() = P;
    return M;
  };
  if (Resumed) {
    Art.ModelZero = modelFromParams(CP.ModelZeroParams);
    Art.WarmUp = modelFromParams(CP.WarmUpParams);
    Art.Correctness = modelFromParams(CP.CorrectnessParams);
    Art.Latency = modelFromParams(CP.LatencyParams);
    Art.Stage1Log = CP.Stage1Log;
    Art.Stage2Log = CP.Stage2Log;
    Art.Stage3Log = CP.Stage3Log;
    rebuildAugmented(Art, CP, DS);
  }

  //===--- Checkpoint/halt machinery -------------------------------------===//

  unsigned StepsThisRun = 0;
  bool Halt = false;

  auto snapshot = [&](unsigned StageIdx, const GRPOTrainerState *TS) {
    PipelineCheckpoint S;
    S.Seed = Opts.Seed;
    S.StageIdx = StageIdx;
    if (TS)
      S.Trainer = *TS;
    if (Art.ModelZero)
      S.ModelZeroParams = Art.ModelZero->params();
    if (Art.WarmUp)
      S.WarmUpParams = Art.WarmUp->params();
    if (Art.Correctness)
      S.CorrectnessParams = Art.Correctness->params();
    if (Art.Latency)
      S.LatencyParams = Art.Latency->params();
    S.Stage1Log = Art.Stage1Log;
    S.Stage2Log = Art.Stage2Log;
    S.Stage3Log = Art.Stage3Log;
    captureAugmented(S, Art, DS);
    return S;
  };

  auto writeCkpt = [&](const PipelineCheckpoint &Snap) {
    if (Opts.CheckpointPath.empty())
      return;
    // Retry with the eval driver's deterministic capped-backoff law (no
    // clock, no randomness in the delay): transient write failures — a
    // briefly full disk, an injected fault — cost a few milliseconds, not
    // a checkpoint. A write that still fails after every attempt is
    // telemetry (the previous checkpoint stands) and training continues on
    // the identical trajectory.
    static Counter &RetriesCounter =
        MetricsRegistry::global().counter("io.checkpoint.retries");
    bool Ok = false;
    unsigned Attempts = 0;
    for (unsigned A = 1; A <= 1 + Opts.CheckpointWriteRetries && !Ok; ++A) {
      if (A >= 2) {
        uint64_t DelayMs =
            driverBackoffMs(Opts.Seed, Snap.StageIdx, A,
                            Opts.CheckpointRetryBaseMs,
                            Opts.CheckpointRetryCapMs);
        if (DelayMs)
          std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
        ++Art.CheckpointRetries;
        RetriesCounter.inc();
      }
      Attempts = A;
      Ok = saveCheckpoint(Opts.CheckpointPath, Snap, Opts.Faults, A);
    }
    if (Ok)
      ++Art.CheckpointsWritten;
    else
      ++Art.CheckpointWriteFailures; // previous checkpoint still stands
    // "ok"/"attempts" ride the meta plane: whether a disk write succeeded
    // is durability-plane information and must not perturb the
    // deterministic args multiset under I/O faults.
    TraceEvent E;
    E.Name = "pipeline.checkpoint";
    E.Phase = TracePhase::Instant;
    E.Args.push_back(TraceArg::ofInt("stage", Snap.StageIdx));
    E.Meta.push_back(TraceArg::ofBool("ok", Ok));
    E.Meta.push_back(TraceArg::ofInt("attempts", Attempts));
    E.TsNs = TraceRecorder::instance().nowNs();
    TraceRecorder::instance().record(std::move(E));
  };

  /// Run the remainder of one GRPO stage: periodic checkpoints, halt on
  /// HaltAfterSteps (after checkpointing, so the run is resumable from
  /// exactly this point).
  auto runStage = [&](unsigned StageIdx, GRPOTrainer &Trainer,
                      std::vector<TrainLogEntry> &Log, unsigned TotalSteps) {
    unsigned Done = static_cast<unsigned>(Log.size());
    if (Done >= TotalSteps || Halt)
      return;
    // Mid-stage resume: reinstate the step counter / RNG / EMA so the
    // continuation is bit-identical to the uninterrupted run.
    if (Resumed && StartStage == StageIdx && Done > 0)
      Trainer.restoreState(CP.Trainer);
    Trainer.train(DS.Train, TotalSteps - Done,
                  [&](const TrainLogEntry &E) {
                    Log.push_back(E);
                    ++StepsThisRun;
                    bool Periodic =
                        Opts.CheckpointEveryNSteps &&
                        Log.size() % Opts.CheckpointEveryNSteps == 0;
                    bool HaltNow = Opts.HaltAfterSteps &&
                                   StepsThisRun >= Opts.HaltAfterSteps;
                    if (Periodic || HaltNow) {
                      GRPOTrainerState TS = Trainer.state();
                      writeCkpt(snapshot(StageIdx, &TS));
                    }
                    if (HaltNow)
                      Halt = true;
                    return !HaltNow;
                  });
  };

  //===--- Stage 1: MODEL-ZERO + diagnostic-augmented sample harvest ------===//

  if (StartStage == 0) {
    TraceSpan StageSpan("pipeline.stage");
    StageSpan.arg(TraceArg::ofStr("stage", "stage1"));
    if (!Art.ModelZero)
      Art.ModelZero = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
    {
      GRPOOptions G = GBase;
      G.Mode = PromptMode::Generic;
      G.Seed = Opts.Seed * 3 + 1;
      G.TraceLabel = "stage1";
      // Every failed rollout becomes a correction-augmented sample (wrong
      // attempt, Alive verdict class, oracle target) — the model-adaptive
      // dataset of §III-C1. The harvest runs in the sequential OnRollout
      // hook, not inside the reward, so the SFT set is identical at any
      // thread count (and needs no locking).
      RewritePolicyModel *Zero = Art.ModelZero.get();
      G.OnRollout = [&Art, Zero](const Sample &S, const Completion &C,
                                 const RolloutScore &Score) {
        bool Failed =
            Score.AnswerVerify.Status == VerifyStatus::SyntaxError ||
            Score.AnswerVerify.Status == VerifyStatus::NotEquivalent;
        // Cap harvesting so a few hard prompts do not dominate the SFT set.
        if (Failed && Art.Augmented.size() < 4 * 1024) {
          SFTExample Ex;
          Ex.S = &S;
          Ex.TargetActions = oracleActions(S.RefTrace, *Zero);
          Ex.IsCorrection = true;
          Ex.AttemptActions = C.Actions;
          Ex.DiagClassTarget = diagKindClass(Score.AnswerVerify.Kind);
          Art.Augmented.push_back(std::move(Ex));
          ++Art.CorrectionSamples;
        }
      };
      GRPOTrainer Trainer(*Art.ModelZero, makeAnswerReward(RV), G);
      runStage(0, Trainer, Art.Stage1Log, Opts.Stage1Steps);
    }

    if (!Halt) {
      // First-time augmented samples: the plain O0 -> instcombine pairs.
      for (const Sample &S : DS.Train) {
        SFTExample Ex;
        Ex.S = &S;
        Ex.TargetActions = oracleActions(S.RefTrace, *Art.ModelZero);
        Ex.IsCorrection = false;
        Ex.DiagClassTarget = 0; // a clean attempt verifies
        Art.Augmented.push_back(std::move(Ex));
        ++Art.FirstTimeSamples;
      }

      //===--- Stage 2 warm-up: SFT from the pretrained base (Fig. 3) ----===//
      Art.WarmUp = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
      SFTOptions SFT = Opts.SFT;
      SFT.Epochs = Opts.Stage2SFTEpochs;
      SFT.LearningRate = Opts.Stage2SFTLearningRate;
      SFT.Seed = Opts.Seed * 5 + 2;
      {
        TraceSpan SftSpan("pipeline.stage");
        SftSpan.arg(TraceArg::ofStr("stage", "stage2.sft"));
        sftTrain(*Art.WarmUp, Art.Augmented, SFT);
      }
      Art.Correctness = std::make_unique<RewritePolicyModel>(*Art.WarmUp);

      writeCkpt(snapshot(1, nullptr)); // stage boundary
    }
  }

  //===--- Stage 2: GRPO -> MODEL-CORRECTNESS ----------------------------===//

  if (!Halt && StartStage <= 1 && Art.Correctness) {
    TraceSpan StageSpan("pipeline.stage");
    StageSpan.arg(TraceArg::ofStr("stage", "stage2"));
    GRPOOptions G = GBase;
    G.Mode = PromptMode::Augmented;
    G.Seed = Opts.Seed * 7 + 3;
    G.TraceLabel = "stage2";
    GRPOTrainer Trainer(*Art.Correctness, makeCorrectnessReward(RV), G);
    runStage(1, Trainer, Art.Stage2Log, Opts.Stage2Steps);
    if (!Halt) {
      Art.Latency = std::make_unique<RewritePolicyModel>(*Art.Correctness);
      writeCkpt(snapshot(2, nullptr)); // stage boundary
    }
  }

  //===--- Stage 3: incremental latency GRPO -> MODEL-LATENCY ------------===//

  if (!Halt && StartStage <= 2 && Art.Latency) {
    TraceSpan StageSpan("pipeline.stage");
    StageSpan.arg(TraceArg::ofStr("stage", "stage3"));
    LatencyRewardParams P;
    P.UMax = Art.UMax;
    GRPOOptions G = GBase;
    G.Mode = PromptMode::Generic; // the <think> section is dropped (§III-C3)
    G.Temperature = Opts.Stage3Temperature;
    G.LearningRate = Opts.Stage3LearningRate;
    G.Seed = Opts.Seed * 11 + 4;
    G.TraceLabel = "stage3";
    GRPOTrainer Trainer(*Art.Latency, makeLatencyReward(RV, P), G);
    runStage(2, Trainer, Art.Stage3Log, Opts.Stage3Steps);
    if (!Halt)
      writeCkpt(snapshot(3, nullptr)); // complete
  }

  Art.Halted = Halt;
  foldStageLog(Art, Art.Stage1Log);
  foldStageLog(Art, Art.Stage2Log);
  foldStageLog(Art, Art.Stage3Log);
  if (Cache) {
    VerifyCache::Counters C = Cache->counters();
    Art.VerifyCacheHits = C.Hits;
    Art.VerifyCacheMisses = C.Misses;
    Art.VerifyCacheEvictions = C.Evictions;
  }
  RobustVerifier::Counters RC = RV.counters();
  Art.InjectedFaults = RC.InjectedBudgetFaults + RC.InjectedVerdictFlips;

  return Art;
}

} // namespace veriopt
