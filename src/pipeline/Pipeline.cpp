//===- Pipeline.cpp - The four-model training pipeline ------------------------//

#include "pipeline/Pipeline.h"

namespace veriopt {

RewardFn makeAnswerReward(const VerifyOptions &VOpts) {
  return [VOpts](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts);
    RolloutScore Score;
    Score.Reward = B.Total;
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

RewardFn makeCorrectnessReward(const VerifyOptions &VOpts) {
  return [VOpts](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts);
    VerifyResult AttemptV = verifyAttempt(S, C, VOpts);
    RolloutScore Score;
    Score.Reward = B.Total + cotReward(C, AttemptV);
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

RewardFn makeLatencyReward(const VerifyOptions &VOpts,
                           const LatencyRewardParams &P) {
  return [VOpts, P](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, VOpts);
    RolloutScore Score;
    // Eq. (4): equivalence-gated shaped speedup. Alive2 stays in the loop
    // as the gate even though the instcombine labels are gone.
    Score.Reward = latencyReward(S, C, B.Equivalent, P);
    Score.Equivalent = B.Equivalent;
    Score.ExactMatch = B.ExactMatch;
    Score.IsCopy = B.IsCopy;
    Score.AnswerVerify = B.Verify;
    return Score;
  };
}

PipelineArtifacts runTrainingPipeline(const Dataset &DS,
                                      const PipelineOptions &Opts) {
  PipelineArtifacts Art;
  Art.Base = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  Art.UMax = computeUMax(DS.Train);

  //===--- Stage 1: MODEL-ZERO + diagnostic-augmented sample harvesting ----===//

  Art.ModelZero = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  {
    // Wrap the answer reward so every failed rollout becomes a
    // correction-augmented sample (wrong attempt, Alive verdict class,
    // oracle target) — the model-adaptive dataset of §III-C1.
    RewardFn Inner = makeAnswerReward(Opts.TrainVerify);
    RewritePolicyModel *Zero = Art.ModelZero.get();
    auto Harvest = [&Art, Inner, Zero](const Sample &S, Completion &C) {
      RolloutScore Score = Inner(S, C);
      bool Failed = Score.AnswerVerify.Status == VerifyStatus::SyntaxError ||
                    Score.AnswerVerify.Status == VerifyStatus::NotEquivalent;
      // Cap harvesting so a few hard prompts do not dominate the SFT set.
      if (Failed && Art.Augmented.size() < 4 * 1024) {
        SFTExample Ex;
        Ex.S = &S;
        Ex.TargetActions = oracleActions(S.RefTrace, *Zero);
        Ex.IsCorrection = true;
        Ex.AttemptActions = C.Actions;
        Ex.DiagClassTarget = diagKindClass(Score.AnswerVerify.Kind);
        Art.Augmented.push_back(std::move(Ex));
        ++Art.CorrectionSamples;
      }
      return Score;
    };
    GRPOOptions G = Opts.GRPO;
    G.Mode = PromptMode::Generic;
    G.Seed = Opts.Seed * 3 + 1;
    GRPOTrainer Trainer(*Art.ModelZero, Harvest, G);
    Art.Stage1Log = Trainer.train(DS.Train, Opts.Stage1Steps);
  }

  // First-time augmented samples: the plain O0 -> instcombine pairs.
  for (const Sample &S : DS.Train) {
    SFTExample Ex;
    Ex.S = &S;
    Ex.TargetActions = oracleActions(S.RefTrace, *Art.ModelZero);
    Ex.IsCorrection = false;
    Ex.DiagClassTarget = 0; // a clean attempt verifies
    Art.Augmented.push_back(std::move(Ex));
    ++Art.FirstTimeSamples;
  }

  //===--- Stage 2: WARM-UP SFT, then GRPO -> MODEL-CORRECTNESS -----------===//

  // SFT starts from the pretrained base model (Fig. 3), not MODEL-ZERO.
  Art.WarmUp = std::make_unique<RewritePolicyModel>(Opts.BaseModel);
  {
    SFTOptions SFT = Opts.SFT;
    SFT.Epochs = Opts.Stage2SFTEpochs;
    SFT.LearningRate = Opts.Stage2SFTLearningRate;
    SFT.Seed = Opts.Seed * 5 + 2;
    sftTrain(*Art.WarmUp, Art.Augmented, SFT);
  }

  Art.Correctness = std::make_unique<RewritePolicyModel>(*Art.WarmUp);
  {
    GRPOOptions G = Opts.GRPO;
    G.Mode = PromptMode::Augmented;
    G.Seed = Opts.Seed * 7 + 3;
    GRPOTrainer Trainer(*Art.Correctness,
                        makeCorrectnessReward(Opts.TrainVerify), G);
    Art.Stage2Log = Trainer.train(DS.Train, Opts.Stage2Steps);
  }

  //===--- Stage 3: incremental latency GRPO -> MODEL-LATENCY -------------===//

  Art.Latency = std::make_unique<RewritePolicyModel>(*Art.Correctness);
  {
    LatencyRewardParams P;
    P.UMax = Art.UMax;
    GRPOOptions G = Opts.GRPO;
    G.Mode = PromptMode::Generic; // the <think> section is dropped (§III-C3)
    G.Temperature = Opts.Stage3Temperature;
    G.LearningRate = Opts.Stage3LearningRate;
    G.Seed = Opts.Seed * 11 + 4;
    GRPOTrainer Trainer(*Art.Latency, makeLatencyReward(Opts.TrainVerify, P),
                        G);
    Art.Stage3Log = Trainer.train(DS.Train, Opts.Stage3Steps);
  }

  return Art;
}

} // namespace veriopt
