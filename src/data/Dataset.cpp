//===- Dataset.cpp - Training/validation corpus construction -------------------//

#include "data/Dataset.h"

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "textgen/Bleu.h"
#include "verify/AliveLite.h"

namespace veriopt {

std::unique_ptr<Sample> buildSample(uint64_t Seed, const std::string &Name,
                                    const DatasetOptions &Opts,
                                    DatasetStats *Stats) {
  RNG R(Seed);
  auto Stat = [&](unsigned DatasetStats::*Field) {
    if (Stats)
      ++(Stats->*Field);
  };
  Stat(&DatasetStats::Generated);

  auto MC = generateMiniC(R, Name, Opts.Gen);
  auto S = std::make_unique<Sample>();
  S->Name = Name;
  S->CSource = MC->render();
  S->SrcModule = lowerToO0(*MC);
  Function *Src = S->SrcModule->getMainFunction();
  assert(Src && isWellFormed(*Src) && "lowering produced invalid IR");
  S->SrcText = printFunction(*Src);
  S->TokenCount = static_cast<unsigned>(tokenizeIR(S->SrcText).size());
  if (S->TokenCount > Opts.TokenLimit) {
    Stat(&DatasetStats::RejectedTokenLimit);
    return nullptr;
  }

  // Reference optimization (the training label).
  S->Reference = Src->clone();
  runReferencePipeline(*S->Reference, &S->RefTrace);
  S->RefText = printFunction(*S->Reference);

  // §IV-A filter: the pair must be formally equivalent.
  VerifyOptions VOpts;
  auto VR = verifyRefinement(*Src, *S->Reference, VOpts);
  switch (VR.Status) {
  case VerifyStatus::Equivalent:
    break;
  case VerifyStatus::NotEquivalent:
  case VerifyStatus::SyntaxError:
    Stat(&DatasetStats::RejectedNotEquivalent);
    return nullptr;
  case VerifyStatus::Inconclusive:
    Stat(&DatasetStats::RejectedInconclusive);
    return nullptr;
  }
  Stat(&DatasetStats::Kept);
  return S;
}

Dataset buildDataset(const DatasetOptions &Opts) {
  Dataset DS;
  // Disjoint deterministic seed streams for the two splits.
  RNG TrainSeeds(Opts.Seed * 0x9E3779B97F4A7C15ULL + 1);
  RNG ValidSeeds(Opts.Seed * 0xC2B2AE3D27D4EB4FULL + 2);

  unsigned Attempts = 0;
  const unsigned MaxAttempts = (Opts.TrainCount + Opts.ValidCount) * 8 + 64;
  while (DS.Train.size() < Opts.TrainCount && Attempts++ < MaxAttempts) {
    auto S = buildSample(TrainSeeds.next(),
                         "train_" + std::to_string(DS.Train.size()), Opts,
                         &DS.Stats);
    if (S)
      DS.Train.push_back(std::move(*S));
  }
  Attempts = 0;
  while (DS.Valid.size() < Opts.ValidCount && Attempts++ < MaxAttempts) {
    auto S = buildSample(ValidSeeds.next(),
                         "valid_" + std::to_string(DS.Valid.size()), Opts,
                         &DS.Stats);
    if (S)
      DS.Valid.push_back(std::move(*S));
  }
  return DS;
}

} // namespace veriopt
