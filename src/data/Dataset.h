//===- Dataset.h - Training/validation corpus construction -------*- C++ -*-=//
//
// Implements §IV-A: generate C-like functions, lower to -O0 IR, produce the
// `-instcombine` reference output, keep only pairs Alive-lite proves
// equivalent (dropping inequivalent / UB-tainted / inconclusive pairs), cap
// the token length, and split train/validation with strict seed isolation.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_DATA_DATASET_H
#define VERIOPT_DATA_DATASET_H

#include "data/MiniC.h"
#include "opt/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace veriopt {

/// One training/validation example: the -O0 function and its reference
/// optimization.
struct Sample {
  std::string Name;
  std::string CSource;              ///< C-like rendering (provenance)
  std::unique_ptr<Module> SrcModule; ///< owns the -O0 function + externs
  std::unique_ptr<Function> Reference; ///< instcombine output (same module
                                        ///< callee declarations)
  std::string SrcText; ///< printed -O0 IR
  std::string RefText; ///< printed reference IR
  PassTrace RefTrace;  ///< rules the reference pass applied (SFT oracle)
  unsigned TokenCount = 0;

  Function *source() const { return SrcModule->getMainFunction(); }
};

struct DatasetOptions {
  unsigned TrainCount = 400; ///< target sizes after filtering
  unsigned ValidCount = 200;
  uint64_t Seed = 2026;
  unsigned TokenLimit = 2048; ///< §IV-A context cap
  MiniCOptions Gen;
};

/// Why candidates were rejected (reported in EXPERIMENTS.md).
struct DatasetStats {
  unsigned Generated = 0;
  unsigned RejectedTokenLimit = 0;
  unsigned RejectedNotEquivalent = 0; ///< instcombine-lite unproven pairs
  unsigned RejectedInconclusive = 0;
  unsigned Kept = 0;
};

struct Dataset {
  std::vector<Sample> Train;
  std::vector<Sample> Valid;
  DatasetStats Stats;
};

/// Build the corpus. Deterministic in \p Opts.Seed; train and validation
/// draw from disjoint generator streams (no leakage).
Dataset buildDataset(const DatasetOptions &Opts = DatasetOptions());

/// Build a single sample from a dedicated seed (nullptr if it fails the
/// §IV-A filters).
std::unique_ptr<Sample> buildSample(uint64_t Seed, const std::string &Name,
                                    const DatasetOptions &Opts,
                                    DatasetStats *Stats = nullptr);

} // namespace veriopt

#endif // VERIOPT_DATA_DATASET_H
