//===- MiniC.h - Synthetic C-like functions and their -O0 lowering -*- C++ -*-//
//
// Stand-in for the paper's LLVM/GCC test-suite corpus (§IV-A): a seeded
// generator of small C-like functions that deliberately covers the peephole
// patterns those suites exercise (algebraic redundancy, strength-reduction
// bait, cast chains, foldable control flow, dead stores), plus an -O0-style
// lowering where every variable lives in an alloca and every access goes
// through memory — the exact input shape `clang -O0` hands to instcombine.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_DATA_MINIC_H
#define VERIOPT_DATA_MINIC_H

#include "ir/Function.h"
#include "support/RNG.h"

#include <memory>
#include <string>
#include <vector>

namespace veriopt {

/// Expression nodes of the mini language. Every expression has a fixed
/// integer width; the generator inserts explicit casts at width changes.
struct MCExpr {
  enum Kind {
    Const,    ///< literal (Value)
    VarRef,   ///< local variable (Index)
    ParamRef, ///< parameter (Index)
    Binary,   ///< Op(A, B) arithmetic/bitwise/shift
    Compare,  ///< icmp yielding a 0/1 value of width Width
    Ternary,  ///< A ? B : C (A is a Compare of the same source)
    Cast,     ///< widening/narrowing of A to Width
  };

  Kind K = Const;
  unsigned Width = 32;
  int64_t Value = 0;   // Const
  unsigned Index = 0;  // VarRef/ParamRef
  Opcode BinOp = Opcode::Add;      // Binary
  ICmpPred CmpPred = ICmpPred::EQ; // Compare
  bool SignedCast = false;         // Cast: sext vs zext when widening
  std::vector<std::unique_ptr<MCExpr>> Ops;

  /// C-like rendering (for docs, examples, and debugging).
  std::string render() const;
};

/// Statements.
struct MCStmt {
  enum Kind {
    Assign, ///< var[Index] = Expr
    If,     ///< if (Cond) Then else Else
    While,  ///< while (Cond) Body   — generator bounds trip counts
    Call,   ///< extern call for side effects: sink(Expr)
    Return, ///< return Expr
  };

  Kind K = Assign;
  unsigned Index = 0;
  std::unique_ptr<MCExpr> Cond; // If/While (i1-producing compare)
  std::unique_ptr<MCExpr> Val;  // Assign/Call/Return
  std::vector<std::unique_ptr<MCStmt>> Then;
  std::vector<std::unique_ptr<MCStmt>> Else;

  std::string render(unsigned Indent = 0) const;
};

/// A generated function.
struct MCFunction {
  std::string Name;
  unsigned RetWidth = 32;
  std::vector<unsigned> ParamWidths;
  std::vector<unsigned> VarWidths; ///< local variables
  std::vector<std::unique_ptr<MCStmt>> Body; ///< always ends in Return

  std::string render() const;
};

/// Tuning knobs for the generator. Defaults approximate the density of
/// peephole opportunities the paper's corpus exhibits (InstCombine achieves
/// a ~2.4x latency geomean on it).
struct MiniCOptions {
  unsigned MinStmts = 2, MaxStmts = 7;
  unsigned MaxParams = 3;
  unsigned MaxVars = 3;
  double IdiomProbability = 0.7;  ///< plant a foldable idiom per expression
  double BranchProbability = 0.35;
  double LoopProbability = 0.08;  ///< small constant-bound loops
  double CallProbability = 0.06;  ///< side-effecting extern call
  unsigned MaxExprDepth = 3;
};

/// Generate a deterministic random function named \p Name.
std::unique_ptr<MCFunction> generateMiniC(RNG &R, const std::string &Name,
                                          const MiniCOptions &Opts = {});

/// Lower to -O0-style IR inside a fresh module (externs declared as
/// needed). The result always passes the IR verifier.
std::unique_ptr<Module> lowerToO0(const MCFunction &F);

} // namespace veriopt

#endif // VERIOPT_DATA_MINIC_H
