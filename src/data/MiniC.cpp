//===- MiniC.cpp - Synthetic C-like functions and their -O0 lowering ----------//

#include "data/MiniC.h"

#include "ir/IRBuilder.h"

#include <set>
#include <sstream>

namespace veriopt {

//===----------------------------------------------------------------------===//
// Rendering (C-like, for docs and examples)
//===----------------------------------------------------------------------===//

namespace {

std::string cType(unsigned W) { return "uint" + std::to_string(W) + "_t"; }

const char *binOpText(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "+";
  case Opcode::Sub:
    return "-";
  case Opcode::Mul:
    return "*";
  case Opcode::UDiv:
    return "/";
  case Opcode::URem:
    return "%";
  case Opcode::Shl:
    return "<<";
  case Opcode::LShr:
    return ">>";
  case Opcode::AShr:
    return ">>";
  case Opcode::And:
    return "&";
  case Opcode::Or:
    return "|";
  case Opcode::Xor:
    return "^";
  default:
    return "?";
  }
}

const char *cmpText(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "==";
  case ICmpPred::NE:
    return "!=";
  case ICmpPred::UGT:
  case ICmpPred::SGT:
    return ">";
  case ICmpPred::UGE:
  case ICmpPred::SGE:
    return ">=";
  case ICmpPred::ULT:
  case ICmpPred::SLT:
    return "<";
  case ICmpPred::ULE:
  case ICmpPred::SLE:
    return "<=";
  }
  return "?";
}

std::string indentStr(unsigned N) { return std::string(N * 2, ' '); }

} // namespace

std::string MCExpr::render() const {
  std::ostringstream OS;
  switch (K) {
  case Const:
    OS << Value;
    break;
  case VarRef:
    OS << "v" << Index;
    break;
  case ParamRef:
    OS << "p" << Index;
    break;
  case Binary:
    OS << "(" << Ops[0]->render() << " " << binOpText(BinOp) << " "
       << Ops[1]->render() << ")";
    break;
  case Compare:
    OS << "(" << Ops[0]->render() << " " << cmpText(CmpPred) << " "
       << Ops[1]->render() << ")";
    break;
  case Ternary:
    OS << "(" << Ops[0]->render() << " ? " << Ops[1]->render() << " : "
       << Ops[2]->render() << ")";
    break;
  case Cast:
    OS << "(" << cType(Width) << ")" << Ops[0]->render();
    break;
  }
  return OS.str();
}

std::string MCStmt::render(unsigned Indent) const {
  std::ostringstream OS;
  std::string Pad = indentStr(Indent);
  switch (K) {
  case Assign:
    OS << Pad << "v" << Index << " = " << Val->render() << ";\n";
    break;
  case If:
    OS << Pad << "if " << Cond->render() << " {\n";
    for (const auto &S : Then)
      OS << S->render(Indent + 1);
    if (!Else.empty()) {
      OS << Pad << "} else {\n";
      for (const auto &S : Else)
        OS << S->render(Indent + 1);
    }
    OS << Pad << "}\n";
    break;
  case While:
    OS << Pad << "while " << Cond->render() << " {\n";
    for (const auto &S : Then)
      OS << S->render(Indent + 1);
    OS << Pad << "}\n";
    break;
  case Call:
    OS << Pad << "sink(" << Val->render() << ");\n";
    break;
  case Return:
    OS << Pad << "return " << Val->render() << ";\n";
    break;
  }
  return OS.str();
}

std::string MCFunction::render() const {
  std::ostringstream OS;
  OS << cType(RetWidth) << " " << Name << "(";
  for (unsigned I = 0; I < ParamWidths.size(); ++I) {
    if (I)
      OS << ", ";
    OS << cType(ParamWidths[I]) << " p" << I;
  }
  OS << ") {\n";
  for (unsigned I = 0; I < VarWidths.size(); ++I)
    OS << "  " << cType(VarWidths[I]) << " v" << I << " = 0;\n";
  for (const auto &S : Body)
    OS << S->render(1);
  OS << "}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

namespace {

class Generator {
public:
  Generator(RNG &R, const MiniCOptions &Opts) : R(R), Opts(Opts) {}

  std::unique_ptr<MCFunction> run(const std::string &Name) {
    auto F = std::make_unique<MCFunction>();
    F->Name = Name;
    W = pickWidth();
    F->RetWidth = W;
    unsigned NumParams = 1 + R.below(Opts.MaxParams);
    for (unsigned I = 0; I < NumParams; ++I)
      F->ParamWidths.push_back(W);
    unsigned NumVars = 1 + R.below(Opts.MaxVars);
    for (unsigned I = 0; I < NumVars; ++I)
      F->VarWidths.push_back(W);
    Fn = F.get();

    unsigned NumStmts =
        Opts.MinStmts + R.below(Opts.MaxStmts - Opts.MinStmts + 1);
    for (unsigned I = 0; I < NumStmts; ++I)
      F->Body.push_back(genStmt(/*Depth=*/0));
    auto Ret = std::make_unique<MCStmt>();
    Ret->K = MCStmt::Return;
    Ret->Val = genExpr(W, Opts.MaxExprDepth);
    F->Body.push_back(std::move(Ret));
    return F;
  }

private:
  unsigned pickWidth() {
    // Bias toward i32 like real C code; some i8/i16/i64 for cast coverage.
    switch (R.below(10)) {
    case 0:
      return 8;
    case 1:
      return 16;
    case 2:
    case 3:
      return 64;
    default:
      return 32;
    }
  }

  std::unique_ptr<MCExpr> constant(unsigned Width, int64_t V) {
    auto E = std::make_unique<MCExpr>();
    E->K = MCExpr::Const;
    E->Width = Width;
    E->Value = V;
    return E;
  }

  std::unique_ptr<MCExpr> leaf(unsigned Width) {
    auto E = std::make_unique<MCExpr>();
    E->Width = Width;
    unsigned Choice = static_cast<unsigned>(R.below(4));
    if (Choice == 0 || Width != W) {
      // Constants at any width; small magnitudes dominate like real code.
      int64_t V = R.chance(0.8) ? R.range(0, 16)
                                : R.range(-256, 1024);
      return constant(Width, V);
    }
    if (Choice == 1 && !Fn->VarWidths.empty()) {
      E->K = MCExpr::VarRef;
      E->Index = static_cast<unsigned>(R.below(Fn->VarWidths.size()));
      return E;
    }
    E->K = MCExpr::ParamRef;
    E->Index = static_cast<unsigned>(R.below(Fn->ParamWidths.size()));
    return E;
  }

  std::unique_ptr<MCExpr> binary(Opcode Op, std::unique_ptr<MCExpr> A,
                                 std::unique_ptr<MCExpr> B) {
    auto E = std::make_unique<MCExpr>();
    E->K = MCExpr::Binary;
    E->Width = A->Width;
    E->BinOp = Op;
    E->Ops.push_back(std::move(A));
    E->Ops.push_back(std::move(B));
    return E;
  }

  /// A deliberately foldable pattern around a sub-expression — the peephole
  /// opportunities the corpus is meant to expose.
  std::unique_ptr<MCExpr> idiom(unsigned Width, unsigned Depth) {
    auto Sub = genExpr(Width, Depth - 1);
    unsigned K = static_cast<unsigned>(R.below(12));
    int64_t Pow2 = 1LL << (1 + R.below(Width >= 16 ? 4 : 2));
    int64_t C = R.range(1, 31);
    switch (K) {
    case 0: // x * 2^k
      return binary(Opcode::Mul, std::move(Sub), constant(Width, Pow2));
    case 1: // x + 0
      return binary(Opcode::Add, std::move(Sub), constant(Width, 0));
    case 2: { // (x ^ C) ^ C
      auto Inner =
          binary(Opcode::Xor, std::move(Sub), constant(Width, C));
      return binary(Opcode::Xor, std::move(Inner), constant(Width, C));
    }
    case 3: // x / 2^k (unsigned)
      return binary(Opcode::UDiv, std::move(Sub), constant(Width, Pow2));
    case 4: // x % 2^k
      return binary(Opcode::URem, std::move(Sub), constant(Width, Pow2));
    case 5: // x * 1
      return binary(Opcode::Mul, std::move(Sub), constant(Width, 1));
    case 6: { // (x << c) >> c
      int64_t Sh = R.range(1, Width / 2);
      auto Inner =
          binary(Opcode::Shl, std::move(Sub), constant(Width, Sh));
      return binary(Opcode::LShr, std::move(Inner), constant(Width, Sh));
    }
    case 7: { // 0 - (0 - x)
      auto Inner =
          binary(Opcode::Sub, constant(Width, 0), std::move(Sub));
      return binary(Opcode::Sub, constant(Width, 0), std::move(Inner));
    }
    case 8: // x & -1
      return binary(Opcode::And, std::move(Sub), constant(Width, -1));
    case 9: { // (x + c1) + c2
      int64_t C2 = R.range(1, 31);
      auto Inner =
          binary(Opcode::Add, std::move(Sub), constant(Width, C));
      return binary(Opcode::Add, std::move(Inner), constant(Width, C2));
    }
    case 10: { // widen-then-truncate cast chain
      if (Width >= 64)
        return binary(Opcode::Or, std::move(Sub), constant(Width, 0));
      auto Widen = std::make_unique<MCExpr>();
      Widen->K = MCExpr::Cast;
      Widen->Width = Width * 2;
      Widen->SignedCast = R.chance(0.3);
      Widen->Ops.push_back(std::move(Sub));
      auto Narrow = std::make_unique<MCExpr>();
      Narrow->K = MCExpr::Cast;
      Narrow->Width = Width;
      Narrow->Ops.push_back(std::move(Widen));
      return Narrow;
    }
    default: // x - x + e  (constant-zero bait through a fresh leaf)
      return binary(Opcode::Add, std::move(Sub),
                    binary(Opcode::Sub, leaf(Width), constant(Width, 0)));
    }
  }

  std::unique_ptr<MCExpr> genExpr(unsigned Width, unsigned Depth) {
    if (Depth == 0)
      return leaf(Width);
    if (R.chance(Opts.IdiomProbability))
      return idiom(Width, Depth);
    unsigned K = static_cast<unsigned>(R.below(10));
    if (K < 6) {
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::And, Opcode::Or,  Opcode::Xor};
      return binary(Ops[R.below(6)], genExpr(Width, Depth - 1),
                    genExpr(Width, Depth - 1));
    }
    if (K < 7) { // shift by in-range constant
      static const Opcode Sh[] = {Opcode::Shl, Opcode::LShr, Opcode::AShr};
      return binary(Sh[R.below(3)], genExpr(Width, Depth - 1),
                    constant(Width, R.range(0, Width - 1)));
    }
    if (K < 8) { // comparison producing 0/1 at this width
      auto E = std::make_unique<MCExpr>();
      E->K = MCExpr::Compare;
      E->Width = Width;
      E->CmpPred = static_cast<ICmpPred>(R.below(10));
      E->Ops.push_back(genExpr(Width, Depth - 1));
      E->Ops.push_back(leaf(Width));
      return E;
    }
    if (K < 9) { // ternary
      auto E = std::make_unique<MCExpr>();
      E->K = MCExpr::Ternary;
      E->Width = Width;
      auto Cond = std::make_unique<MCExpr>();
      Cond->K = MCExpr::Compare;
      Cond->Width = Width;
      Cond->CmpPred = static_cast<ICmpPred>(R.below(10));
      Cond->Ops.push_back(genExpr(Width, Depth - 1));
      Cond->Ops.push_back(leaf(Width));
      E->Ops.push_back(std::move(Cond));
      E->Ops.push_back(genExpr(Width, Depth - 1));
      E->Ops.push_back(leaf(Width));
      return E;
    }
    // division by a safe (nonzero) constant
    return binary(R.chance(0.5) ? Opcode::UDiv : Opcode::URem,
                  genExpr(Width, Depth - 1),
                  constant(Width, R.range(1, 13)));
  }

  std::unique_ptr<MCExpr> genCond(unsigned Depth) {
    auto E = std::make_unique<MCExpr>();
    E->K = MCExpr::Compare;
    E->Width = W;
    E->CmpPred = static_cast<ICmpPred>(R.below(10));
    E->Ops.push_back(genExpr(W, Depth));
    E->Ops.push_back(leaf(W));
    return E;
  }

  std::unique_ptr<MCStmt> assign(unsigned Var, std::unique_ptr<MCExpr> E) {
    auto S = std::make_unique<MCStmt>();
    S->K = MCStmt::Assign;
    S->Index = Var;
    S->Val = std::move(E);
    return S;
  }

  std::unique_ptr<MCStmt> genStmt(unsigned Depth) {
    if (Depth < 2 && R.chance(Opts.LoopProbability))
      return genLoop(Depth);
    if (Depth < 2 && R.chance(Opts.BranchProbability))
      return genIf(Depth);
    if (R.chance(Opts.CallProbability)) {
      auto S = std::make_unique<MCStmt>();
      S->K = MCStmt::Call;
      S->Val = genExpr(W, 1);
      return S;
    }
    // Never assign an enclosing loop's counter: that could reset the
    // induction variable and produce a non-terminating loop.
    unsigned Var;
    do {
      Var = static_cast<unsigned>(R.below(Fn->VarWidths.size()));
    } while (BlockedVars.count(Var));
    return assign(Var, genExpr(W, Opts.MaxExprDepth));
  }

  std::unique_ptr<MCStmt> genIf(unsigned Depth) {
    auto S = std::make_unique<MCStmt>();
    S->K = MCStmt::If;
    S->Cond = genCond(1);
    unsigned ThenN = 1 + R.below(2);
    for (unsigned I = 0; I < ThenN; ++I)
      S->Then.push_back(genStmt(Depth + 1));
    if (R.chance(0.5)) {
      unsigned ElseN = 1 + R.below(2);
      for (unsigned I = 0; I < ElseN; ++I)
        S->Else.push_back(genStmt(Depth + 1));
    }
    return S;
  }

  std::unique_ptr<MCStmt> genLoop(unsigned Depth) {
    // Bounded counting loop over a dedicated fresh variable so the
    // verifier's unroll bound always covers it: for (v = 0; v < K; v++).
    unsigned LoopVar = static_cast<unsigned>(Fn->VarWidths.size());
    Fn->VarWidths.push_back(W);
    int64_t Trip = R.range(1, 3);

    auto S = std::make_unique<MCStmt>();
    S->K = MCStmt::While;
    auto Cond = std::make_unique<MCExpr>();
    Cond->K = MCExpr::Compare;
    Cond->Width = W;
    Cond->CmpPred = ICmpPred::ULT;
    auto LV = std::make_unique<MCExpr>();
    LV->K = MCExpr::VarRef;
    LV->Width = W;
    LV->Index = LoopVar;
    Cond->Ops.push_back(std::move(LV));
    Cond->Ops.push_back(constant(W, Trip));
    S->Cond = std::move(Cond);

    BlockedVars.insert(LoopVar);
    unsigned BodyN = 1 + R.below(2);
    for (unsigned I = 0; I < BodyN; ++I)
      S->Then.push_back(genStmt(Depth + 1));
    BlockedVars.erase(LoopVar);
    // Mandatory increment keeps the loop terminating.
    auto LV2 = std::make_unique<MCExpr>();
    LV2->K = MCExpr::VarRef;
    LV2->Width = W;
    LV2->Index = LoopVar;
    S->Then.push_back(assign(
        LoopVar, binary(Opcode::Add, std::move(LV2), constant(W, 1))));
    return S;
  }

  RNG &R;
  const MiniCOptions &Opts;
  MCFunction *Fn = nullptr;
  unsigned W = 32;
  std::set<unsigned> BlockedVars;
};

} // namespace

std::unique_ptr<MCFunction> generateMiniC(RNG &R, const std::string &Name,
                                          const MiniCOptions &Opts) {
  Generator G(R, Opts);
  return G.run(Name);
}

//===----------------------------------------------------------------------===//
// -O0 lowering
//===----------------------------------------------------------------------===//

namespace {

class Lowerer {
public:
  explicit Lowerer(const MCFunction &MC) : MC(MC) {}

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>();
    Mod = M.get();
    std::vector<Type *> ParamTys;
    for (unsigned PW : MC.ParamWidths)
      ParamTys.push_back(Type::getInt(PW));
    F = Mod->addFunction(std::make_unique<Function>(
        MC.Name, Type::getInt(MC.RetWidth), ParamTys, false));
    for (unsigned I = 0; I < ParamTys.size(); ++I)
      F->getArg(I)->setName("p" + std::to_string(I));

    BasicBlock *Entry = F->createBlock("entry");
    B.setInsertBlock(Entry);

    // -O0 shape: every parameter and variable gets a stack slot; parameters
    // are spilled immediately; locals are explicitly zero-initialized.
    for (unsigned I = 0; I < MC.ParamWidths.size(); ++I) {
      Value *Slot = B.createAlloca(Type::getInt(MC.ParamWidths[I]));
      Slot->setName("p" + std::to_string(I) + ".addr");
      B.createStore(F->getArg(I), Slot);
      ParamSlots.push_back(Slot);
    }
    for (unsigned I = 0; I < MC.VarWidths.size(); ++I) {
      Value *Slot = B.createAlloca(Type::getInt(MC.VarWidths[I]));
      Slot->setName("v" + std::to_string(I));
      B.createStore(B.getInt(Type::getInt(MC.VarWidths[I]), 0), Slot);
      VarSlots.push_back(Slot);
    }

    for (const auto &S : MC.Body)
      lowerStmt(*S);
    // Defensive: a body without a trailing Return still needs a terminator.
    if (!B.getInsertBlock()->getTerminator())
      B.createRet(B.getInt(Type::getInt(MC.RetWidth), 0));
    return M;
  }

private:
  /// Variable slots are sized when the statement list is lowered; loops
  /// may have appended fresh variables after construction, so slots are
  /// created lazily for them too.
  Value *varSlot(unsigned Index) {
    while (VarSlots.size() <= Index) {
      // Should not happen: all vars are registered before lowering.
      assert(false && "variable without a slot");
    }
    return VarSlots[Index];
  }

  Value *lowerExpr(const MCExpr &E) {
    Type *Ty = Type::getInt(E.Width);
    switch (E.K) {
    case MCExpr::Const:
      return F->getConstant(Ty, APInt64::fromSigned(E.Width, E.Value));
    case MCExpr::VarRef:
      return B.createLoad(Ty, varSlot(E.Index));
    case MCExpr::ParamRef:
      return B.createLoad(Ty, ParamSlots[E.Index]);
    case MCExpr::Binary: {
      Value *L = lowerExpr(*E.Ops[0]);
      Value *R = lowerExpr(*E.Ops[1]);
      return B.createBinary(E.BinOp, L, R);
    }
    case MCExpr::Compare: {
      Value *L = lowerExpr(*E.Ops[0]);
      Value *R = lowerExpr(*E.Ops[1]);
      Value *C = B.createICmp(E.CmpPred, L, R);
      if (E.Width == 1)
        return C;
      return B.createZExt(C, Ty);
    }
    case MCExpr::Ternary: {
      // -O0 lowers ?: through control flow and a temporary slot.
      Value *Cond = lowerCond(*E.Ops[0]);
      Value *Slot = B.createAlloca(Ty);
      Function *Fn = F;
      BasicBlock *TBB = Fn->createBlock("tern.t" +
                                        std::to_string(BlockCounter));
      BasicBlock *FBB = Fn->createBlock("tern.f" +
                                        std::to_string(BlockCounter));
      BasicBlock *Cont = Fn->createBlock("tern.end" +
                                         std::to_string(BlockCounter++));
      B.createCondBr(Cond, TBB, FBB);
      B.setInsertBlock(TBB);
      B.createStore(lowerExpr(*E.Ops[1]), Slot);
      B.createBr(Cont);
      B.setInsertBlock(FBB);
      B.createStore(lowerExpr(*E.Ops[2]), Slot);
      B.createBr(Cont);
      B.setInsertBlock(Cont);
      return B.createLoad(Ty, Slot);
    }
    case MCExpr::Cast: {
      Value *Src = lowerExpr(*E.Ops[0]);
      unsigned SrcW = Src->getType()->getBitWidth();
      if (SrcW == E.Width)
        return Src;
      if (E.Width < SrcW)
        return B.createTrunc(Src, Ty);
      return B.createCast(E.SignedCast ? Opcode::SExt : Opcode::ZExt, Src,
                          Ty);
    }
    }
    return nullptr;
  }

  /// Lower an expression used as a branch condition to an i1.
  Value *lowerCond(const MCExpr &E) {
    if (E.K == MCExpr::Compare) {
      Value *L = lowerExpr(*E.Ops[0]);
      Value *R = lowerExpr(*E.Ops[1]);
      return B.createICmp(E.CmpPred, L, R);
    }
    Value *V = lowerExpr(E);
    return B.createICmp(ICmpPred::NE, V,
                        B.getInt(V->getType(), 0));
  }

  void lowerStmt(const MCStmt &S) {
    switch (S.K) {
    case MCStmt::Assign:
      B.createStore(lowerExpr(*S.Val), varSlot(S.Index));
      return;
    case MCStmt::Return:
      B.createRet(lowerExpr(*S.Val));
      return;
    case MCStmt::Call: {
      Value *Arg = lowerExpr(*S.Val);
      unsigned W = Arg->getType()->getBitWidth();
      std::string Name = "sink" + std::to_string(W);
      Function *Callee = Mod->getFunction(Name);
      if (!Callee)
        Callee = Mod->addFunction(std::make_unique<Function>(
            Name, Type::getVoid(),
            std::vector<Type *>{Arg->getType()}, true));
      B.createCall(Callee, Type::getVoid(), {Arg});
      return;
    }
    case MCStmt::If: {
      Value *Cond = lowerCond(*S.Cond);
      unsigned Id = BlockCounter++;
      BasicBlock *TBB = F->createBlock("if.then" + std::to_string(Id));
      BasicBlock *Cont = F->createBlock("if.end" + std::to_string(Id));
      BasicBlock *EBB =
          S.Else.empty() ? Cont
                         : F->createBlock("if.else" + std::to_string(Id));
      B.createCondBr(Cond, TBB, EBB);
      B.setInsertBlock(TBB);
      for (const auto &Sub : S.Then)
        lowerStmt(*Sub);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(Cont);
      if (!S.Else.empty()) {
        B.setInsertBlock(EBB);
        for (const auto &Sub : S.Else)
          lowerStmt(*Sub);
        if (!B.getInsertBlock()->getTerminator())
          B.createBr(Cont);
      }
      B.setInsertBlock(Cont);
      return;
    }
    case MCStmt::While: {
      unsigned Id = BlockCounter++;
      BasicBlock *Head = F->createBlock("while.cond" + std::to_string(Id));
      BasicBlock *Body = F->createBlock("while.body" + std::to_string(Id));
      BasicBlock *Exit = F->createBlock("while.end" + std::to_string(Id));
      B.createBr(Head);
      B.setInsertBlock(Head);
      Value *Cond = lowerCond(*S.Cond);
      B.createCondBr(Cond, Body, Exit);
      B.setInsertBlock(Body);
      for (const auto &Sub : S.Then)
        lowerStmt(*Sub);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(Head);
      B.setInsertBlock(Exit);
      return;
    }
    }
  }

  const MCFunction &MC;
  Module *Mod = nullptr;
  Function *F = nullptr;
  IRBuilder B;
  std::vector<Value *> ParamSlots;
  std::vector<Value *> VarSlots;
  unsigned BlockCounter = 0;
};

} // namespace

std::unique_ptr<Module> lowerToO0(const MCFunction &F) {
  Lowerer L(F);
  return L.run();
}

} // namespace veriopt
