//===- Parser.cpp - Textual IR parser ----------------------------------------//

#include "ir/Parser.h"

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

namespace veriopt {

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class Tok {
  Eof,
  LocalId,  // %name
  GlobalId, // @name
  AttrId,   // #0
  Word,     // bare identifier / keyword / type name
  Int,      // integer literal (possibly negative)
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Equals,
  Colon,
  Star,
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text; // identifier payload (without sigil) or literal text
  int64_t IntVal = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) { advance(); }

  const Token &peek() const { return Cur; }
  Token take() {
    Token T = Cur;
    advance();
    return T;
  }

private:
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '-' || C == '$';
  }

  void advance() {
    // Skip whitespace and ';' comments.
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    Cur = Token();
    Cur.Line = Line;
    if (Pos >= Src.size())
      return;

    char C = Src[Pos];
    auto lexIdentifier = [&](Tok Kind) {
      ++Pos; // consume sigil
      size_t Start = Pos;
      // Allow quoted names: %"x y".
      if (Pos < Src.size() && Src[Pos] == '"') {
        ++Pos;
        Start = Pos;
        while (Pos < Src.size() && Src[Pos] != '"')
          ++Pos;
        Cur.Kind = Kind;
        Cur.Text = Src.substr(Start, Pos - Start);
        if (Pos < Src.size())
          ++Pos; // closing quote
        return;
      }
      while (Pos < Src.size() && isIdentChar(Src[Pos]))
        ++Pos;
      Cur.Kind = Kind;
      Cur.Text = Src.substr(Start, Pos - Start);
    };

    switch (C) {
    case '%':
      lexIdentifier(Tok::LocalId);
      return;
    case '@':
      lexIdentifier(Tok::GlobalId);
      return;
    case '#':
      lexIdentifier(Tok::AttrId);
      return;
    case '!':
      // Metadata reference: lex as a word token "!..." so the parser can
      // reject it with a clear message.
      lexIdentifier(Tok::Word);
      Cur.Text = "!" + Cur.Text;
      return;
    case '(':
      Cur.Kind = Tok::LParen;
      ++Pos;
      return;
    case ')':
      Cur.Kind = Tok::RParen;
      ++Pos;
      return;
    case '{':
      Cur.Kind = Tok::LBrace;
      ++Pos;
      return;
    case '}':
      Cur.Kind = Tok::RBrace;
      ++Pos;
      return;
    case '[':
      Cur.Kind = Tok::LBracket;
      ++Pos;
      return;
    case ']':
      Cur.Kind = Tok::RBracket;
      ++Pos;
      return;
    case ',':
      Cur.Kind = Tok::Comma;
      ++Pos;
      return;
    case '=':
      Cur.Kind = Tok::Equals;
      ++Pos;
      return;
    case ':':
      Cur.Kind = Tok::Colon;
      ++Pos;
      return;
    case '*':
      Cur.Kind = Tok::Star;
      ++Pos;
      return;
    default:
      break;
    }

    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
      size_t Start = Pos;
      if (C == '-')
        ++Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      std::string Text = Src.substr(Start, Pos - Start);
      // Numeric label / identifier contexts see this as text too.
      Cur.Kind = Tok::Int;
      Cur.Text = Text;
      errno = 0;
      Cur.IntVal = static_cast<int64_t>(strtoull(
          Text[0] == '-' ? Text.c_str() + 1 : Text.c_str(), nullptr, 10));
      if (Text[0] == '-')
        Cur.IntVal = -Cur.IntVal;
      return;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() && isIdentChar(Src[Pos]))
        ++Pos;
      Cur.Kind = Tok::Word;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }

    // Unknown character: emit as a word so the parser reports it.
    Cur.Kind = Tok::Word;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
  Token Cur;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

/// Struct layout info for lowering struct GEPs to byte offsets.
struct StructLayout {
  std::vector<Type *> Fields;
  std::vector<unsigned> Offsets;
  unsigned Size = 0;
};

const std::set<std::string> &skippableAttrs() {
  static const std::set<std::string> S = {
      "dso_local",  "internal",   "private",    "local_unnamed_addr",
      "unnamed_addr", "noundef",  "zeroext",    "signext",
      "nonnull",    "noalias",    "nocapture",  "readonly",
      "writeonly",  "inreg",      "returned",   "nsw", // flag handled inline
      "tail",       "musttail",   "notail",     "fastcc",
      "ccc",        "hidden",     "protected",  "default",
  };
  return S;
}

class Parser {
public:
  explicit Parser(const std::string &Text) : Lex(Text) {}

  ErrorOr<std::unique_ptr<Module>> run() {
    auto M = std::make_unique<Module>();
    Mod = M.get();
    while (Lex.peek().Kind != Tok::Eof) {
      const Token &T = Lex.peek();
      if (T.Kind == Tok::Word && T.Text == "define") {
        if (!parseDefine())
          return takeError();
      } else if (T.Kind == Tok::Word && T.Text == "declare") {
        if (!parseDeclare())
          return takeError();
      } else if (T.Kind == Tok::LocalId) {
        if (!parseStructDecl())
          return takeError();
      } else if (T.Kind == Tok::Word && (T.Text == "attributes" ||
                                         T.Text == "source_filename" ||
                                         T.Text == "target")) {
        skipTopLevelDirective();
      } else {
        return fail("unexpected token '" + describe(T) + "' at module level");
      }
    }
    return std::move(M);
  }

private:
  ErrorOr<std::unique_ptr<Module>> takeError() {
    return ErrorOr<std::unique_ptr<Module>>(Error{ErrMsg, ErrLine});
  }

  bool fail2(const std::string &Msg) {
    if (ErrMsg.empty()) {
      ErrMsg = Msg;
      ErrLine = Lex.peek().Line;
    }
    return false;
  }
  // fail() used in contexts returning ErrorOr from run(); keep both spellings.
  ErrorOr<std::unique_ptr<Module>> fail(const std::string &Msg) {
    fail2(Msg);
    return takeError();
  }

  static std::string describe(const Token &T) {
    switch (T.Kind) {
    case Tok::Eof:
      return "<eof>";
    case Tok::LocalId:
      return "%" + T.Text;
    case Tok::GlobalId:
      return "@" + T.Text;
    case Tok::AttrId:
      return "#" + T.Text;
    default:
      return T.Text.empty() ? tokName(T.Kind) : T.Text;
    }
  }

  static std::string tokName(Tok K) {
    switch (K) {
    case Tok::LParen:
      return "(";
    case Tok::RParen:
      return ")";
    case Tok::LBrace:
      return "{";
    case Tok::RBrace:
      return "}";
    case Tok::LBracket:
      return "[";
    case Tok::RBracket:
      return "]";
    case Tok::Comma:
      return ",";
    case Tok::Equals:
      return "=";
    case Tok::Colon:
      return ":";
    case Tok::Star:
      return "*";
    default:
      return "<token>";
    }
  }

  bool expect(Tok K, const char *What) {
    if (Lex.peek().Kind != K)
      return fail2(std::string("expected ") + What + ", found '" +
                   describe(Lex.peek()) + "'");
    Lex.take();
    return true;
  }

  void skipAttrTokens() {
    while (true) {
      const Token &T = Lex.peek();
      if (T.Kind == Tok::AttrId) {
        Lex.take();
        continue;
      }
      if (T.Kind == Tok::Word && skippableAttrs().count(T.Text) &&
          T.Text != "nsw") {
        Lex.take();
        continue;
      }
      break;
    }
  }

  void skipTopLevelDirective() {
    // Consume tokens until we reach something that can start a new top-level
    // entity. Handles `attributes #0 = { ... }` and `target ... = "..."`.
    Lex.take(); // the directive keyword
    int Depth = 0;
    while (Lex.peek().Kind != Tok::Eof) {
      Tok K = Lex.peek().Kind;
      if (Depth == 0 && K == Tok::Word &&
          (Lex.peek().Text == "define" || Lex.peek().Text == "declare" ||
           Lex.peek().Text == "attributes" || Lex.peek().Text == "target" ||
           Lex.peek().Text == "source_filename"))
        return;
      if (K == Tok::LBrace)
        ++Depth;
      if (K == Tok::RBrace) {
        --Depth;
        Lex.take();
        if (Depth <= 0)
          return;
        continue;
      }
      Lex.take();
    }
  }

  /// Parse a type. Returns nullptr on failure (error recorded).
  /// Struct names resolve for GEP/alloca lowering only; as a *value* type a
  /// struct is illegal. `StructName` receives the struct's name when the
  /// parsed type was a named struct (so callers that can lower it may).
  Type *parseType(std::string *StructName = nullptr) {
    const Token &T = Lex.peek();
    Type *Base = nullptr;
    if (T.Kind == Tok::Word) {
      const std::string &W = T.Text;
      if (W == "void")
        Base = Type::getVoid();
      else if (W == "ptr")
        Base = Type::getPtr();
      else if (W.size() >= 2 && W[0] == 'i') {
        unsigned Width = 0;
        for (size_t I = 1; I < W.size(); ++I) {
          if (!std::isdigit(static_cast<unsigned char>(W[I]))) {
            Width = 0;
            break;
          }
          Width = Width * 10 + (W[I] - '0');
        }
        if (Width && Type::isLegalIntWidth(Width))
          Base = Type::getInt(Width);
        else if (Width) {
          fail2("unsupported integer width '" + W + "'");
          return nullptr;
        }
      }
      if (Base)
        Lex.take();
    } else if (T.Kind == Tok::LocalId) {
      // Named struct type.
      auto It = Structs.find(T.Text);
      if (It == Structs.end()) {
        fail2("unknown struct type '%" + T.Text + "'");
        return nullptr;
      }
      if (StructName)
        *StructName = T.Text;
      Lex.take();
      // Struct-typed values are not supported; struct types are only legal
      // behind a pointer or as a GEP/alloca source type. Callers decide.
      Base = Type::getPtr(); // placeholder; '*' suffix handled below.
      // Mark: a bare struct type (no '*') is only legal where StructName is
      // consumed; represent it as ptr and let the caller use StructName.
      if (Lex.peek().Kind != Tok::Star)
        return Base;
    }
    if (!Base) {
      fail2("expected type, found '" + describe(Lex.peek()) + "'");
      return nullptr;
    }
    // Typed-pointer suffixes collapse to opaque ptr.
    bool AnyStar = false;
    while (Lex.peek().Kind == Tok::Star) {
      Lex.take();
      AnyStar = true;
    }
    if (AnyStar)
      return Type::getPtr();
    return Base;
  }

  bool parseStructDecl() {
    Token Name = Lex.take(); // %struct.S
    if (!expect(Tok::Equals, "'='"))
      return false;
    if (Lex.peek().Kind != Tok::Word || Lex.peek().Text != "type")
      return fail2("expected 'type' in struct declaration");
    Lex.take();
    if (!expect(Tok::LBrace, "'{'"))
      return false;
    StructLayout L;
    if (Lex.peek().Kind != Tok::RBrace) {
      while (true) {
        Type *FieldTy = parseType();
        if (!FieldTy)
          return false;
        if (!FieldTy->isInteger() && !FieldTy->isPointer())
          return fail2("unsupported struct field type");
        L.Fields.push_back(FieldTy);
        if (Lex.peek().Kind != Tok::Comma)
          break;
        Lex.take();
      }
    }
    if (!expect(Tok::RBrace, "'}'"))
      return false;
    // Natural alignment layout.
    unsigned Offset = 0, MaxAlign = 1;
    for (Type *F : L.Fields) {
      unsigned Sz = F->getStoreSize();
      unsigned Align = Sz;
      Offset = (Offset + Align - 1) / Align * Align;
      L.Offsets.push_back(Offset);
      Offset += Sz;
      MaxAlign = std::max(MaxAlign, Align);
    }
    L.Size = (Offset + MaxAlign - 1) / MaxAlign * MaxAlign;
    Structs[Name.Text] = L;
    return true;
  }

  bool parseDeclare() {
    Lex.take(); // declare
    skipAttrTokens();
    Type *RetTy = parseType();
    if (!RetTy)
      return false;
    if (Lex.peek().Kind != Tok::GlobalId)
      return fail2("expected function name after 'declare'");
    std::string Name = Lex.take().Text;
    if (!expect(Tok::LParen, "'('"))
      return false;
    std::vector<Type *> Params;
    if (Lex.peek().Kind != Tok::RParen) {
      while (true) {
        Type *PTy = parseType();
        if (!PTy)
          return false;
        skipAttrTokens();
        Params.push_back(PTy);
        if (Lex.peek().Kind != Tok::Comma)
          break;
        Lex.take();
      }
    }
    if (!expect(Tok::RParen, "')'"))
      return false;
    skipAttrTokens();
    if (!Mod->getFunction(Name))
      Mod->addFunction(std::make_unique<Function>(Name, RetTy, Params, true));
    return true;
  }

  bool parseDefine() {
    Lex.take(); // define
    skipAttrTokens();
    Type *RetTy = parseType();
    if (!RetTy)
      return false;
    if (Lex.peek().Kind != Tok::GlobalId)
      return fail2("expected function name after 'define'");
    std::string Name = Lex.take().Text;
    if (Mod->getFunction(Name))
      return fail2("redefinition of function '@" + Name + "'");
    if (!expect(Tok::LParen, "'('"))
      return false;

    std::vector<Type *> ParamTys;
    std::vector<std::string> ParamNames;
    if (Lex.peek().Kind != Tok::RParen) {
      while (true) {
        Type *PTy = parseType();
        if (!PTy)
          return false;
        if (PTy->isVoid())
          return fail2("parameter of type void");
        skipAttrTokens();
        std::string PName;
        if (Lex.peek().Kind == Tok::LocalId)
          PName = Lex.take().Text;
        ParamTys.push_back(PTy);
        ParamNames.push_back(PName);
        if (Lex.peek().Kind != Tok::Comma)
          break;
        Lex.take();
      }
    }
    if (!expect(Tok::RParen, "')'"))
      return false;
    skipAttrTokens();
    if (!expect(Tok::LBrace, "'{'"))
      return false;

    auto FOwner =
        std::make_unique<Function>(Name, RetTy, ParamTys, /*Decl=*/false);
    F = FOwner.get();
    Values.clear();
    Pending.clear();
    BlockMap.clear();
    Defined.clear();
    DefOrder.clear();
    CurBB = nullptr;

    for (unsigned I = 0; I < ParamNames.size(); ++I) {
      std::string PName =
          ParamNames[I].empty() ? std::to_string(I) : ParamNames[I];
      F->getArg(I)->setName(PName);
      if (Values.count(PName))
        return fail2("duplicate parameter name '%" + PName + "'");
      Values[PName] = F->getArg(I);
    }

    // Body. Hard cap on statements (labels + instructions) so adversarial
    // emissions degrade into a parse error instead of unbounded memory use.
    constexpr uint64_t MaxBodyItems = 1u << 20;
    uint64_t BodyItems = 0;
    while (Lex.peek().Kind != Tok::RBrace) {
      if (Lex.peek().Kind == Tok::Eof)
        return fail2("unexpected end of input inside function body");
      if (++BodyItems > MaxBodyItems)
        return fail2("function body exceeds maximum size");
      // Block label? (word or int followed by ':')
      if ((Lex.peek().Kind == Tok::Word || Lex.peek().Kind == Tok::Int) &&
          isLabelAhead()) {
        Token L = Lex.take();
        if (Lex.peek().Kind != Tok::Colon)
          return fail2("expected ':' after label '" + L.Text + "'");
        Lex.take(); // ':'
        if (!startBlock(L.Text))
          return false;
        continue;
      }
      if (!CurBB) {
        if (!F->empty())
          return fail2("instruction after terminator requires a block label");
        // Unlabelled entry block (kept out of the label namespace).
        CurBB = F->createBlock("");
        Defined.insert(CurBB);
        DefOrder.push_back(CurBB);
      }
      if (!parseInstruction())
        return false;
    }
    Lex.take(); // '}'
    skipAttrTokens();

    // All forward references must have resolved.
    for (auto &[Nm, PH] : Pending)
      if (PH->hasUses())
        return fail2("use of undefined value '%" + Nm + "'");
    Pending.clear();
    // Every referenced block must exist with a body.
    for (auto &[Nm, BB] : BlockMap)
      if (!Defined.count(BB))
        return fail2("reference to undefined label '%" + Nm + "'");
    if (F->empty())
      return fail2("function body is empty");
    // Restore textual order (forward references create blocks early).
    F->reorderBlocks(DefOrder);

    Mod->addFunction(std::move(FOwner));
    F = nullptr;
    return true;
  }

  /// Lookahead: is the current token a block label (followed by ':')?
  bool isLabelAhead() {
    // The lexer has one-token lookahead only; a label token is only ever a
    // Word/Int at statement start, and the only other statements starting
    // with a Word are instruction keywords. Disambiguate by keyword set.
    const Token &T = Lex.peek();
    if (T.Kind == Tok::Int)
      return true; // numeric statement start can only be a label
    static const std::set<std::string> Keywords = {
        "add",  "sub",  "mul",   "udiv",  "sdiv",   "urem",  "srem",
        "shl",  "lshr", "ashr",  "and",   "or",     "xor",   "icmp",
        "select", "zext", "sext", "trunc", "alloca", "load",  "store",
        "getelementptr", "phi", "br",     "ret",    "call",  "bitcast",
        "tail", "freeze"};
    return !Keywords.count(T.Text);
  }

  bool startBlock(const std::string &Name) {
    BasicBlock *BB = getBlock(Name);
    if (Defined.count(BB))
      return fail2("redefinition of label '" + Name + "'");
    Defined.insert(BB);
    DefOrder.push_back(BB);
    CurBB = BB;
    return true;
  }

  BasicBlock *getBlock(const std::string &Name) {
    auto It = BlockMap.find(Name);
    if (It != BlockMap.end())
      return It->second;
    BasicBlock *BB = F->createBlock(Name);
    BlockMap[Name] = BB;
    return BB;
  }

  /// Define a value name; resolves pending forward references.
  bool defineValue(const std::string &Name, Value *V) {
    if (Values.count(Name))
      return fail2("redefinition of value '%" + Name + "'");
    Values[Name] = V;
    auto It = Pending.find(Name);
    if (It != Pending.end()) {
      Placeholder *PH = It->second.get();
      if (PH->getType() != V->getType())
        return fail2("type mismatch for forward-referenced value '%" + Name +
                     "'");
      PH->replaceAllUsesWith(V);
      Pending.erase(It);
    }
    return true;
  }

  /// Parse an operand of the given expected type.
  Value *parseOperand(Type *Ty) {
    skipAttrTokens();
    const Token &T = Lex.peek();
    if (T.Kind == Tok::LocalId) {
      std::string Name = Lex.take().Text;
      auto It = Values.find(Name);
      if (It != Values.end()) {
        if (It->second->getType() != Ty) {
          fail2("operand '%" + Name + "' has type " +
                It->second->getType()->getName() + ", expected " +
                Ty->getName());
          return nullptr;
        }
        return It->second;
      }
      auto PIt = Pending.find(Name);
      if (PIt != Pending.end()) {
        if (PIt->second->getType() != Ty) {
          fail2("conflicting types for forward reference '%" + Name + "'");
          return nullptr;
        }
        return PIt->second.get();
      }
      auto PH = std::make_unique<Placeholder>(Ty);
      Value *Out = PH.get();
      Pending[Name] = std::move(PH);
      return Out;
    }
    if (T.Kind == Tok::Int) {
      if (!Ty->isInteger()) {
        fail2("integer literal where " + Ty->getName() + " expected");
        return nullptr;
      }
      Token IntT = Lex.take();
      return F->getConstant(Ty, APInt64::fromSigned(Ty->getBitWidth(),
                                                    IntT.IntVal));
    }
    if (T.Kind == Tok::Word && (T.Text == "true" || T.Text == "false")) {
      if (!Ty->isBool()) {
        fail2("boolean literal where " + Ty->getName() + " expected");
        return nullptr;
      }
      bool B = Lex.take().Text == "true";
      return F->getBool(B);
    }
    if (T.Kind == Tok::Word && (T.Text == "undef" || T.Text == "poison" ||
                                T.Text == "null")) {
      fail2("unsupported value '" + T.Text + "' in this dialect");
      return nullptr;
    }
    fail2("expected operand, found '" + describe(T) + "'");
    return nullptr;
  }

  Instruction *emit(std::unique_ptr<Instruction> I) {
    return CurBB->push_back(std::move(I));
  }

  /// Parse poison flags for binary ops.
  void parseFlags(bool &NUW, bool &NSW, bool &Exact) {
    while (Lex.peek().Kind == Tok::Word) {
      const std::string &W = Lex.peek().Text;
      if (W == "nuw")
        NUW = true;
      else if (W == "nsw")
        NSW = true;
      else if (W == "exact")
        Exact = true;
      else
        break;
      Lex.take();
    }
  }

  /// Consume optional ", align N" suffixes.
  bool parseAlignTail() {
    while (Lex.peek().Kind == Tok::Comma) {
      Lex.take();
      if (Lex.peek().Kind == Tok::Word && Lex.peek().Text == "align") {
        Lex.take();
        if (Lex.peek().Kind != Tok::Int)
          return fail2("expected alignment value");
        Lex.take();
        continue;
      }
      return fail2("unsupported instruction suffix after ','");
    }
    return true;
  }

  bool parseInstruction() {
    std::string ResultName;
    bool HasResult = false;
    if (Lex.peek().Kind == Tok::LocalId) {
      ResultName = Lex.take().Text;
      HasResult = true;
      if (!expect(Tok::Equals, "'='"))
        return false;
    }

    skipAttrTokens(); // e.g. "tail" before call
    if (Lex.peek().Kind != Tok::Word)
      return fail2("expected instruction keyword, found '" +
                   describe(Lex.peek()) + "'");
    std::string Op = Lex.take().Text;

    auto finish = [&](Instruction *I) -> bool {
      if (HasResult) {
        if (I->getType()->isVoid())
          return fail2("cannot assign name to void instruction");
        I->setName(ResultName);
        return defineValue(ResultName, I);
      }
      if (!I->getType()->isVoid())
        return fail2("non-void instruction result must be named");
      return true;
    };

    // Binary operators.
    static const std::map<std::string, Opcode> BinOps = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
        {"udiv", Opcode::UDiv}, {"sdiv", Opcode::SDiv}, {"urem", Opcode::URem},
        {"srem", Opcode::SRem}, {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr}, {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor}};
    auto BinIt = BinOps.find(Op);
    if (BinIt != BinOps.end()) {
      bool NUW = false, NSW = false, Exact = false;
      parseFlags(NUW, NSW, Exact);
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger())
        return fail2("binary operator requires an integer type");
      Value *LHS = parseOperand(Ty);
      if (!LHS)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      Value *RHS = parseOperand(Ty);
      if (!RHS)
        return false;
      auto I = std::make_unique<BinaryInst>(BinIt->second, LHS, RHS);
      I->setNUW(NUW);
      I->setNSW(NSW);
      I->setExact(Exact);
      return finish(emit(std::move(I)));
    }

    if (Op == "icmp") {
      static const std::map<std::string, ICmpPred> Preds = {
          {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
          {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE},
          {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
          {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
          {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE}};
      if (Lex.peek().Kind != Tok::Word || !Preds.count(Lex.peek().Text))
        return fail2("expected icmp predicate");
      ICmpPred P = Preds.at(Lex.take().Text);
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger())
        return fail2("icmp requires an integer type");
      Value *LHS = parseOperand(Ty);
      if (!LHS)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      Value *RHS = parseOperand(Ty);
      if (!RHS)
        return false;
      return finish(emit(std::make_unique<ICmpInst>(P, LHS, RHS)));
    }

    if (Op == "select") {
      Type *CTy = parseType();
      if (!CTy)
        return false;
      if (!CTy->isBool())
        return fail2("select condition must be i1");
      Value *Cond = parseOperand(CTy);
      if (!Cond)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger())
        return fail2("select arms must be integers");
      Value *TV = parseOperand(Ty);
      if (!TV)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      Type *Ty2 = parseType();
      if (!Ty2)
        return false;
      if (Ty2 != Ty)
        return fail2("select arm types differ");
      Value *FV = parseOperand(Ty);
      if (!FV)
        return false;
      return finish(emit(std::make_unique<SelectInst>(Cond, TV, FV)));
    }

    if (Op == "zext" || Op == "sext" || Op == "trunc" || Op == "bitcast" ||
        Op == "freeze") {
      if (Op == "freeze") {
        // freeze T %v — treated as the identity (no undef in this dialect).
        Type *Ty = parseType();
        if (!Ty)
          return false;
        Value *V = parseOperand(Ty);
        if (!V)
          return false;
        if (!HasResult)
          return fail2("freeze result must be named");
        return defineValue(ResultName, V);
      }
      Type *SrcTy = parseType();
      if (!SrcTy)
        return false;
      Value *Src = parseOperand(SrcTy);
      if (!Src)
        return false;
      if (Lex.peek().Kind != Tok::Word || Lex.peek().Text != "to")
        return fail2("expected 'to' in cast");
      Lex.take();
      Type *DstTy = parseType();
      if (!DstTy)
        return false;
      if (Op == "bitcast") {
        // Pointer-to-pointer bitcasts fold to the operand.
        if (!SrcTy->isPointer() || !DstTy->isPointer())
          return fail2("only pointer bitcasts are supported");
        if (!HasResult)
          return fail2("bitcast result must be named");
        return defineValue(ResultName, Src);
      }
      if (!SrcTy->isInteger() || !DstTy->isInteger())
        return fail2("casts are integer-only");
      unsigned SW = SrcTy->getBitWidth(), DW = DstTy->getBitWidth();
      Opcode CO = Op == "zext"   ? Opcode::ZExt
                  : Op == "sext" ? Opcode::SExt
                                 : Opcode::Trunc;
      if (CO == Opcode::Trunc ? DW >= SW : DW <= SW)
        return fail2("invalid cast width for '" + Op + "'");
      return finish(emit(std::make_unique<CastInst>(CO, Src, DstTy)));
    }

    if (Op == "alloca") {
      std::string StructName;
      Type *Ty = parseType(&StructName);
      if (!Ty)
        return false;
      if (!parseAlignTail())
        return false;
      std::unique_ptr<AllocaInst> I;
      if (!StructName.empty()) {
        // Allocate a struct: model as an i64-rounded byte blob via the
        // largest integer covering it; we only need the byte size.
        unsigned Sz = Structs[StructName].Size;
        Type *Blob = Sz <= 1   ? Type::getInt8()
                     : Sz <= 2 ? Type::getInt16()
                     : Sz <= 4 ? Type::getInt32()
                               : Type::getInt64();
        if (Sz > 8)
          return fail2("struct allocas larger than 8 bytes are unsupported");
        I = std::make_unique<AllocaInst>(Blob);
      } else {
        if (!Ty->isInteger())
          return fail2("alloca of unsupported type");
        I = std::make_unique<AllocaInst>(Ty);
      }
      return finish(emit(std::move(I)));
    }

    if (Op == "load") {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger())
        return fail2("only integer loads are supported");
      if (!expect(Tok::Comma, "','"))
        return false;
      Type *PTy = parseType();
      if (!PTy)
        return false;
      if (!PTy->isPointer())
        return fail2("load pointer operand must be a pointer");
      Value *Ptr = parseOperand(Type::getPtr());
      if (!Ptr)
        return false;
      if (!parseAlignTail())
        return false;
      return finish(emit(std::make_unique<LoadInst>(Ty, Ptr)));
    }

    if (Op == "store") {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger())
        return fail2("only integer stores are supported");
      Value *V = parseOperand(Ty);
      if (!V)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      Type *PTy = parseType();
      if (!PTy)
        return false;
      if (!PTy->isPointer())
        return fail2("store pointer operand must be a pointer");
      Value *Ptr = parseOperand(Type::getPtr());
      if (!Ptr)
        return false;
      if (!parseAlignTail())
        return false;
      emit(std::make_unique<StoreInst>(V, Ptr));
      if (HasResult)
        return fail2("store does not produce a result");
      return true;
    }

    if (Op == "getelementptr")
      return parseGEP(HasResult, ResultName);

    if (Op == "phi") {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isInteger() && !Ty->isPointer())
        return fail2("phi of unsupported type");
      auto Phi = std::make_unique<PhiInst>(Ty);
      PhiInst *P = Phi.get();
      // Phis must precede non-phi instructions.
      if (CurBB->getFirstNonPhi())
        return fail2("phi after non-phi instruction in block");
      emit(std::move(Phi));
      while (true) {
        if (!expect(Tok::LBracket, "'['"))
          return false;
        Value *V = parseOperand(Ty);
        if (!V)
          return false;
        if (!expect(Tok::Comma, "','"))
          return false;
        if (Lex.peek().Kind != Tok::LocalId)
          return fail2("expected incoming block label in phi");
        BasicBlock *BB = getBlock(Lex.take().Text);
        if (!expect(Tok::RBracket, "']'"))
          return false;
        P->addIncoming(V, BB);
        if (Lex.peek().Kind != Tok::Comma)
          break;
        Lex.take();
      }
      if (!HasResult)
        return fail2("phi result must be named");
      P->setName(ResultName);
      return defineValue(ResultName, P);
    }

    if (Op == "br") {
      if (Lex.peek().Kind == Tok::Word && Lex.peek().Text == "label") {
        Lex.take();
        if (Lex.peek().Kind != Tok::LocalId)
          return fail2("expected branch target label");
        BasicBlock *Dest = getBlock(Lex.take().Text);
        emit(std::make_unique<BrInst>(Dest));
        CurBB = nullptr; // terminated; next statement must open a block
        return true;
      }
      Type *CTy = parseType();
      if (!CTy)
        return false;
      if (!CTy->isBool())
        return fail2("branch condition must be i1");
      Value *Cond = parseOperand(CTy);
      if (!Cond)
        return false;
      if (!expect(Tok::Comma, "','"))
        return false;
      if (Lex.peek().Kind != Tok::Word || Lex.peek().Text != "label")
        return fail2("expected 'label' in conditional branch");
      Lex.take();
      if (Lex.peek().Kind != Tok::LocalId)
        return fail2("expected true branch target");
      BasicBlock *T = getBlock(Lex.take().Text);
      if (!expect(Tok::Comma, "','"))
        return false;
      if (Lex.peek().Kind != Tok::Word || Lex.peek().Text != "label")
        return fail2("expected 'label' in conditional branch");
      Lex.take();
      if (Lex.peek().Kind != Tok::LocalId)
        return fail2("expected false branch target");
      BasicBlock *FB = getBlock(Lex.take().Text);
      emit(std::make_unique<BrInst>(Cond, T, FB));
      CurBB = nullptr;
      return true;
    }

    if (Op == "ret") {
      if (Lex.peek().Kind == Tok::Word && Lex.peek().Text == "void") {
        Lex.take();
        if (!F->getReturnType()->isVoid())
          return fail2("ret void in non-void function");
        emit(std::make_unique<RetInst>());
        CurBB = nullptr;
        return true;
      }
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (Ty != F->getReturnType())
        return fail2("ret type does not match function return type");
      Value *V = parseOperand(Ty);
      if (!V)
        return false;
      emit(std::make_unique<RetInst>(V));
      CurBB = nullptr;
      return true;
    }

    if (Op == "call") {
      Type *RetTy = parseType();
      if (!RetTy)
        return false;
      if (Lex.peek().Kind != Tok::GlobalId)
        return fail2("expected callee name");
      std::string Callee = Lex.take().Text;
      if (!expect(Tok::LParen, "'('"))
        return false;
      std::vector<Value *> Args;
      std::vector<Type *> ArgTys;
      if (Lex.peek().Kind != Tok::RParen) {
        while (true) {
          Type *ATy = parseType();
          if (!ATy)
            return false;
          skipAttrTokens();
          Value *A = parseOperand(ATy);
          if (!A)
            return false;
          Args.push_back(A);
          ArgTys.push_back(ATy);
          if (Lex.peek().Kind != Tok::Comma)
            break;
          Lex.take();
        }
      }
      if (!expect(Tok::RParen, "')'"))
        return false;
      skipAttrTokens();
      Function *CF = Mod->getFunction(Callee);
      if (!CF) {
        // Auto-declare externals referenced by paper snippets.
        CF = Mod->addFunction(
            std::make_unique<Function>(Callee, RetTy, ArgTys, true));
      } else {
        if (CF->getReturnType() != RetTy)
          return fail2("call return type mismatch for '@" + Callee + "'");
        if (CF->getNumParams() != Args.size())
          return fail2("call argument count mismatch for '@" + Callee + "'");
        for (unsigned I = 0; I < Args.size(); ++I)
          if (CF->getParamType(I) != ArgTys[I])
            return fail2("call argument type mismatch for '@" + Callee + "'");
      }
      Instruction *I = emit(std::make_unique<CallInst>(CF, RetTy, Args));
      if (RetTy->isVoid()) {
        if (HasResult)
          return fail2("cannot name the result of a void call");
        return true;
      }
      if (!HasResult)
        return true; // ignoring a call result is legal
      return finish(I);
    }

    return fail2("unknown instruction '" + Op + "'");
  }

  bool parseGEP(bool HasResult, const std::string &ResultName) {
    if (Lex.peek().Kind == Tok::Word && Lex.peek().Text == "inbounds")
      Lex.take();
    std::string StructName;
    Type *ElemTy = parseType(&StructName);
    if (!ElemTy)
      return false;
    if (!expect(Tok::Comma, "','"))
      return false;
    Type *PTy = parseType();
    if (!PTy)
      return false;
    if (!PTy->isPointer())
      return fail2("gep base must be a pointer");
    Value *Base = parseOperand(Type::getPtr());
    if (!Base)
      return false;

    // First index scales by the element size.
    if (!expect(Tok::Comma, "','"))
      return false;
    Type *IdxTy = parseType();
    if (!IdxTy)
      return false;
    if (!IdxTy->isInteger())
      return fail2("gep index must be an integer");
    Value *Idx0 = parseOperand(IdxTy);
    if (!Idx0)
      return false;

    unsigned ElemSize;
    const StructLayout *SL = nullptr;
    if (!StructName.empty()) {
      SL = &Structs[StructName];
      ElemSize = SL->Size;
    } else if (ElemTy->isInteger()) {
      ElemSize = ElemTy->getStoreSize();
    } else if (ElemTy->isPointer()) {
      ElemSize = 8;
    } else {
      return fail2("unsupported gep element type");
    }

    // Compute base byte offset term: Idx0 * ElemSize (constant-fold when
    // possible; widen the index to i64 first).
    int64_t ConstOffset = 0;
    Value *DynOffset = nullptr;
    if (auto *CI = dyn_cast<ConstantInt>(Idx0)) {
      ConstOffset = CI->getValue().sext() * static_cast<int64_t>(ElemSize);
    } else {
      Value *Wide = Idx0;
      if (IdxTy->getBitWidth() < 64)
        Wide = emit(std::make_unique<CastInst>(Opcode::SExt, Idx0,
                                               Type::getInt64()));
      DynOffset = emit(std::make_unique<BinaryInst>(
          Opcode::Mul, Wide,
          F->getConstant(64, static_cast<uint64_t>(ElemSize))));
    }

    // Optional struct field index.
    if (Lex.peek().Kind == Tok::Comma) {
      Lex.take();
      Type *FTy = parseType();
      if (!FTy)
        return false;
      Value *FieldIdx = parseOperand(FTy);
      if (!FieldIdx)
        return false;
      auto *CI = dyn_cast<ConstantInt>(FieldIdx);
      if (!SL)
        return fail2("second gep index requires a struct element type");
      if (!CI)
        return fail2("struct field index must be a constant");
      uint64_t FI = CI->getValue().zext();
      if (FI >= SL->Offsets.size())
        return fail2("struct field index out of range");
      ConstOffset += static_cast<int64_t>(SL->Offsets[FI]);
      if (Lex.peek().Kind == Tok::Comma)
        return fail2("gep with more than two indices is unsupported");
    }

    Value *Offset;
    if (DynOffset && ConstOffset != 0)
      Offset = emit(std::make_unique<BinaryInst>(
          Opcode::Add, DynOffset,
          F->getConstant(64, static_cast<uint64_t>(ConstOffset))));
    else if (DynOffset)
      Offset = DynOffset;
    else
      Offset = F->getConstant(64, static_cast<uint64_t>(ConstOffset));

    Instruction *G = emit(std::make_unique<GEPInst>(Base, Offset));
    if (!HasResult)
      return fail2("gep result must be named");
    G->setName(ResultName);
    return defineValue(ResultName, G);
  }

  Lexer Lex;
  Module *Mod = nullptr;
  Function *F = nullptr;
  BasicBlock *CurBB = nullptr;
  std::unordered_map<std::string, Value *> Values;
  std::unordered_map<std::string, std::unique_ptr<Placeholder>> Pending;
  std::unordered_map<std::string, BasicBlock *> BlockMap;
  std::set<BasicBlock *> Defined;
  std::vector<BasicBlock *> DefOrder;
  std::unordered_map<std::string, StructLayout> Structs;

  std::string ErrMsg;
  unsigned ErrLine = 0;
};

} // namespace

ErrorOr<std::unique_ptr<Module>> parseModule(const std::string &Text) {
  Parser P(Text);
  return P.run();
}

ErrorOr<std::unique_ptr<Module>>
parseModuleExpectingFunction(const std::string &Text) {
  auto M = parseModule(Text);
  if (!M)
    return M;
  if (!M.value()->getMainFunction())
    return ErrorOr<std::unique_ptr<Module>>(
        Error{"module contains no function definition", 0});
  return M;
}

} // namespace veriopt
