//===- IRBuilder.h - Convenience instruction construction --------*- C++ -*-=//
//
// Builds instructions at an insertion point (end of a block by default).
// Used by the -O0 lowering, the passes, and the tests.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_IRBUILDER_H
#define VERIOPT_IR_IRBUILDER_H

#include "ir/Function.h"

#include <memory>

namespace veriopt {

/// Appends instructions to the current block.
class IRBuilder {
public:
  explicit IRBuilder(BasicBlock *BB = nullptr) : BB(BB) {}

  void setInsertBlock(BasicBlock *NewBB) { BB = NewBB; }
  BasicBlock *getInsertBlock() const { return BB; }
  Function *getFunction() const { return BB ? BB->getParent() : nullptr; }

  ConstantInt *getInt(Type *Ty, uint64_t Bits) {
    return getFunction()->getConstant(Ty, APInt64(Ty->getBitWidth(), Bits));
  }

  Value *createBinary(Opcode Op, Value *L, Value *R, bool NUW = false,
                      bool NSW = false, bool Exact = false) {
    auto I = std::make_unique<BinaryInst>(Op, L, R);
    I->setNUW(NUW);
    I->setNSW(NSW);
    I->setExact(Exact);
    return insert(std::move(I));
  }
  Value *createAdd(Value *L, Value *R, bool NUW = false, bool NSW = false) {
    return createBinary(Opcode::Add, L, R, NUW, NSW);
  }
  Value *createSub(Value *L, Value *R, bool NUW = false, bool NSW = false) {
    return createBinary(Opcode::Sub, L, R, NUW, NSW);
  }
  Value *createMul(Value *L, Value *R, bool NUW = false, bool NSW = false) {
    return createBinary(Opcode::Mul, L, R, NUW, NSW);
  }
  Value *createAnd(Value *L, Value *R) {
    return createBinary(Opcode::And, L, R);
  }
  Value *createOr(Value *L, Value *R) { return createBinary(Opcode::Or, L, R); }
  Value *createXor(Value *L, Value *R) {
    return createBinary(Opcode::Xor, L, R);
  }
  Value *createShl(Value *L, Value *R) {
    return createBinary(Opcode::Shl, L, R);
  }

  Value *createICmp(ICmpPred P, Value *L, Value *R) {
    return insert(std::make_unique<ICmpInst>(P, L, R));
  }
  Value *createSelect(Value *C, Value *T, Value *F) {
    return insert(std::make_unique<SelectInst>(C, T, F));
  }
  Value *createCast(Opcode Op, Value *Src, Type *DestTy) {
    return insert(std::make_unique<CastInst>(Op, Src, DestTy));
  }
  Value *createZExt(Value *Src, Type *DestTy) {
    return createCast(Opcode::ZExt, Src, DestTy);
  }
  Value *createSExt(Value *Src, Type *DestTy) {
    return createCast(Opcode::SExt, Src, DestTy);
  }
  Value *createTrunc(Value *Src, Type *DestTy) {
    return createCast(Opcode::Trunc, Src, DestTy);
  }

  Value *createAlloca(Type *Ty) {
    return insert(std::make_unique<AllocaInst>(Ty));
  }
  Value *createLoad(Type *Ty, Value *Ptr) {
    return insert(std::make_unique<LoadInst>(Ty, Ptr));
  }
  void createStore(Value *V, Value *Ptr) {
    insert(std::make_unique<StoreInst>(V, Ptr));
  }
  Value *createGEP(Value *Ptr, Value *ByteOffset) {
    return insert(std::make_unique<GEPInst>(Ptr, ByteOffset));
  }

  PhiInst *createPhi(Type *Ty) {
    return static_cast<PhiInst *>(insert(std::make_unique<PhiInst>(Ty)));
  }
  void createBr(BasicBlock *Dest) { insert(std::make_unique<BrInst>(Dest)); }
  void createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    insert(std::make_unique<BrInst>(Cond, T, F));
  }
  void createRet(Value *V) { insert(std::make_unique<RetInst>(V)); }
  void createRetVoid() { insert(std::make_unique<RetInst>()); }
  Value *createCall(Function *Callee, Type *RetTy,
                    const std::vector<Value *> &Args) {
    return insert(std::make_unique<CallInst>(Callee, RetTy, Args));
  }

private:
  Instruction *insert(std::unique_ptr<Instruction> I) {
    assert(BB && "no insertion block set");
    return BB->push_back(std::move(I));
  }

  BasicBlock *BB;
};

} // namespace veriopt

#endif // VERIOPT_IR_IRBUILDER_H
