//===- Type.h - Types of the LLVM-IR subset ----------------------*- C++ -*-=//
//
// The IR dialect supports: void, integer types i1/i8/i16/i32/i64, and an
// opaque pointer type (modern-LLVM style). Types are interned singletons;
// pointer equality is type equality.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_TYPE_H
#define VERIOPT_IR_TYPE_H

#include <cassert>
#include <string>

namespace veriopt {

/// An interned IR type. Obtain instances only through the static getters.
class Type {
public:
  enum Kind { VoidTy, IntegerTy, PointerTy };

  static Type *getVoid();
  /// Integer type of the given width; only 1/8/16/32/64 are legal.
  static Type *getInt(unsigned BitWidth);
  static Type *getInt1() { return getInt(1); }
  static Type *getInt8() { return getInt(8); }
  static Type *getInt16() { return getInt(16); }
  static Type *getInt32() { return getInt(32); }
  static Type *getInt64() { return getInt(64); }
  static Type *getPtr();

  Kind getKind() const { return K; }
  bool isVoid() const { return K == VoidTy; }
  bool isInteger() const { return K == IntegerTy; }
  bool isInteger(unsigned W) const { return K == IntegerTy && Width == W; }
  bool isPointer() const { return K == PointerTy; }
  bool isBool() const { return isInteger(1); }

  unsigned getBitWidth() const {
    assert(isInteger() && "getBitWidth on non-integer type");
    return Width;
  }

  /// Size in bytes when stored in memory (i1 occupies one byte).
  unsigned getStoreSize() const;

  /// Textual form: "void", "i32", "ptr".
  std::string getName() const;

  /// True iff \p W is a width this dialect supports.
  static bool isLegalIntWidth(unsigned W) {
    return W == 1 || W == 8 || W == 16 || W == 32 || W == 64;
  }

private:
  Type(Kind K, unsigned Width) : K(K), Width(Width) {}

  Kind K;
  unsigned Width;
};

} // namespace veriopt

#endif // VERIOPT_IR_TYPE_H
