//===- Instruction.h - IR instruction classes --------------------*- C++ -*-=//
//
// The instruction set of the dialect. Every LLVM construct the paper's
// examples and the -O0 lowering need is covered: integer binary ops with
// nuw/nsw/exact flags, icmp, select, casts, alloca/load/store and byte-offset
// GEPs, phi, branches, ret, and calls to declared externals.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_INSTRUCTION_H
#define VERIOPT_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <vector>

namespace veriopt {

class BasicBlock;
class Function;

/// Instruction opcodes. Order matters: contiguous ranges back the classof()
/// range tests below.
enum class Opcode : unsigned {
  // Integer binary operators [BinaryFirst, BinaryLast].
  Add,
  Sub,
  Mul,
  UDiv,
  SDiv,
  URem,
  SRem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  // Comparisons and selection.
  ICmp,
  Select,
  // Casts [CastFirst, CastLast].
  ZExt,
  SExt,
  Trunc,
  // Memory.
  Alloca,
  Load,
  Store,
  GEP,
  // Control / SSA.
  Phi,
  Br,
  Ret,
  Call,
};

inline constexpr Opcode BinaryFirst = Opcode::Add;
inline constexpr Opcode BinaryLast = Opcode::Xor;
inline constexpr Opcode CastFirst = Opcode::ZExt;
inline constexpr Opcode CastLast = Opcode::Trunc;

/// Keyword used in textual IR ("add", "icmp", ...).
const char *opcodeName(Opcode Op);

/// Integer comparison predicates, matching LLVM's icmp.
enum class ICmpPred : unsigned { EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE };

const char *predName(ICmpPred P);
/// The predicate with operands swapped (e.g. ULT -> UGT).
ICmpPred swappedPred(ICmpPred P);
/// The logically negated predicate (e.g. ULT -> UGE).
ICmpPred invertedPred(ICmpPred P);
bool isSignedPred(ICmpPred P);
bool isUnsignedPred(ICmpPred P);

/// Base instruction: owns operand slots (use-tracked) and lives inside a
/// BasicBlock. Successor blocks and phi incoming blocks are held in subclass
/// fields, not operand slots, since BasicBlocks are not Values here.
class Instruction : public Value {
public:
  ~Instruction() override { dropAllReferences(); }

  Opcode getOpcode() const {
    return static_cast<Opcode>(getValueID() - FirstInstruction);
  }
  const char *getOpcodeName() const { return opcodeName(getOpcode()); }

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replace every occurrence of \p From in the operand list with \p To.
  void replaceUsesOfWith(Value *From, Value *To);

  /// Detach from all operands (removes this from their user lists).
  void dropAllReferences();

  bool isBinaryOp() const {
    return getOpcode() >= BinaryFirst && getOpcode() <= BinaryLast;
  }
  bool isCast() const {
    return getOpcode() >= CastFirst && getOpcode() <= CastLast;
  }
  bool isTerminator() const {
    return getOpcode() == Opcode::Br || getOpcode() == Opcode::Ret;
  }
  bool isShift() const {
    Opcode O = getOpcode();
    return O == Opcode::Shl || O == Opcode::LShr || O == Opcode::AShr;
  }
  bool isDivRem() const {
    Opcode O = getOpcode();
    return O == Opcode::UDiv || O == Opcode::SDiv || O == Opcode::URem ||
           O == Opcode::SRem;
  }
  /// Commutative binary operators.
  bool isCommutative() const {
    switch (getOpcode()) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      return true;
    default:
      return false;
    }
  }
  /// True if removing this instruction can change observable behaviour even
  /// when its result is unused.
  bool mayHaveSideEffects() const {
    Opcode O = getOpcode();
    return O == Opcode::Store || O == Opcode::Call || isTerminator();
  }
  bool mayReadMemory() const {
    Opcode O = getOpcode();
    return O == Opcode::Load || O == Opcode::Call;
  }
  bool mayWriteMemory() const {
    Opcode O = getOpcode();
    return O == Opcode::Store || O == Opcode::Call;
  }

  // Poison-generating flags.
  bool hasNUW() const { return NUW; }
  bool hasNSW() const { return NSW; }
  bool isExact() const { return Exact; }
  void setNUW(bool B) { NUW = B; }
  void setNSW(bool B) { NSW = B; }
  void setExact(bool B) { Exact = B; }
  void clearPoisonFlags() { NUW = NSW = Exact = false; }

  static bool classof(const Value *V) {
    return V->getValueID() >= FirstInstruction;
  }

protected:
  Instruction(Opcode Op, Type *Ty)
      : Value(FirstInstruction + static_cast<unsigned>(Op), Ty) {}

  void addOperand(Value *V);

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
  bool NUW = false, NSW = false, Exact = false;
};

/// Integer two-operand arithmetic/bitwise instruction.
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, Value *LHS, Value *RHS)
      : Instruction(Op, LHS->getType()) {
    assert(Op >= BinaryFirst && Op <= BinaryLast && "not a binary opcode");
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->isBinaryOp();
    return false;
  }
};

/// Integer comparison producing i1.
class ICmpInst : public Instruction {
public:
  ICmpInst(ICmpPred Pred, Value *LHS, Value *RHS)
      : Instruction(Opcode::ICmp, Type::getInt1()), Pred(Pred) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  ICmpPred getPredicate() const { return Pred; }
  void setPredicate(ICmpPred P) { Pred = P; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::ICmp;
    return false;
  }

private:
  ICmpPred Pred;
};

/// select i1 %c, T %a, T %b
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Opcode::Select, TrueV->getType()) {
    assert(Cond->getType()->isBool() && "select condition must be i1");
    assert(TrueV->getType() == FalseV->getType() && "arm type mismatch");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Select;
    return false;
  }
};

/// zext/sext/trunc between integer types.
class CastInst : public Instruction {
public:
  CastInst(Opcode Op, Value *Src, Type *DestTy) : Instruction(Op, DestTy) {
    assert(Op >= CastFirst && Op <= CastLast && "not a cast opcode");
    assert(Src->getType()->isInteger() && DestTy->isInteger() &&
           "casts are integer-only");
    assert((Op == Opcode::Trunc
                ? DestTy->getBitWidth() < Src->getType()->getBitWidth()
                : DestTy->getBitWidth() > Src->getType()->getBitWidth()) &&
           "cast width direction mismatch");
    addOperand(Src);
  }

  Value *getSrc() const { return getOperand(0); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->isCast();
    return false;
  }
};

/// Stack allocation of a fixed-size slot; yields a ptr.
class AllocaInst : public Instruction {
public:
  explicit AllocaInst(Type *AllocatedTy)
      : Instruction(Opcode::Alloca, Type::getPtr()), AllocatedTy(AllocatedTy) {
    assert(!AllocatedTy->isVoid() && "cannot allocate void");
  }

  Type *getAllocatedType() const { return AllocatedTy; }
  unsigned getAllocatedBytes() const { return AllocatedTy->getStoreSize(); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Alloca;
    return false;
  }

private:
  Type *AllocatedTy;
};

/// Typed load from a pointer.
class LoadInst : public Instruction {
public:
  LoadInst(Type *Ty, Value *Ptr) : Instruction(Opcode::Load, Ty) {
    assert(Ptr->getType()->isPointer() && "load pointer operand must be ptr");
    assert(Ty->isInteger() && "only integer loads are supported");
    addOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }
  unsigned getAccessBytes() const { return getType()->getStoreSize(); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Load;
    return false;
  }
};

/// Typed store to a pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr) : Instruction(Opcode::Store, Type::getVoid()) {
    assert(Ptr->getType()->isPointer() && "store pointer operand must be ptr");
    assert(Val->getType()->isInteger() && "only integer stores are supported");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }
  unsigned getAccessBytes() const {
    return getValueOperand()->getType()->getStoreSize();
  }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Store;
    return false;
  }
};

/// Byte-offset pointer arithmetic: gep ptr %p, i64 %off == %p + %off bytes.
/// The textual parser lowers typed/struct GEPs to this canonical form.
class GEPInst : public Instruction {
public:
  GEPInst(Value *Ptr, Value *ByteOffset)
      : Instruction(Opcode::GEP, Type::getPtr()) {
    assert(Ptr->getType()->isPointer() && "gep base must be ptr");
    assert(ByteOffset->getType()->isInteger(64) && "gep offset must be i64");
    addOperand(Ptr);
    addOperand(ByteOffset);
  }

  Value *getPointer() const { return getOperand(0); }
  Value *getOffset() const { return getOperand(1); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::GEP;
    return false;
  }
};

/// SSA phi node. Incoming blocks are parallel to the operand list.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(Opcode::Phi, Ty) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->getType() == getType() && "phi incoming type mismatch");
    addOperand(V);
    IncomingBlocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  BasicBlock *getIncomingBlock(unsigned I) const {
    assert(I < IncomingBlocks.size() && "incoming index out of range");
    return IncomingBlocks[I];
  }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  void setIncomingBlock(unsigned I, BasicBlock *BB) { IncomingBlocks[I] = BB; }

  /// Incoming value for \p BB, or nullptr if BB is not an incoming block.
  Value *getIncomingValueFor(const BasicBlock *BB) const;
  /// Remove the entry for incoming index \p I.
  void removeIncoming(unsigned I);

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Phi;
    return false;
  }

private:
  std::vector<BasicBlock *> IncomingBlocks;
};

/// Conditional or unconditional branch.
class BrInst : public Instruction {
public:
  /// Unconditional.
  explicit BrInst(BasicBlock *Dest) : Instruction(Opcode::Br, Type::getVoid()) {
    Succs.push_back(Dest);
  }
  /// Conditional.
  BrInst(Value *Cond, BasicBlock *IfTrue, BasicBlock *IfFalse)
      : Instruction(Opcode::Br, Type::getVoid()) {
    assert(Cond->getType()->isBool() && "branch condition must be i1");
    addOperand(Cond);
    Succs.push_back(IfTrue);
    Succs.push_back(IfFalse);
  }

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }
  unsigned getNumSuccessors() const {
    return static_cast<unsigned>(Succs.size());
  }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < Succs.size() && "successor index out of range");
    return Succs[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < Succs.size() && "successor index out of range");
    Succs[I] = BB;
  }
  BasicBlock *getTrueSuccessor() const { return getSuccessor(0); }
  BasicBlock *getFalseSuccessor() const {
    assert(isConditional() && "no false successor");
    return getSuccessor(1);
  }
  /// Demote a conditional branch to an unconditional one to \p Dest.
  void makeUnconditional(BasicBlock *Dest);

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Br;
    return false;
  }

private:
  std::vector<BasicBlock *> Succs;
};

/// Function return (with or without a value).
class RetInst : public Instruction {
public:
  RetInst() : Instruction(Opcode::Ret, Type::getVoid()) {}
  explicit RetInst(Value *V) : Instruction(Opcode::Ret, Type::getVoid()) {
    addOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "ret void has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Ret;
    return false;
  }
};

/// Call to a declared function. The callee is held out-of-line (it is a
/// Function, not an operand slot) and arguments are the operands.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, Type *RetTy, const std::vector<Value *> &Args);

  Function *getCallee() const { return Callee; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      return I->getOpcode() == Opcode::Call;
    return false;
  }

private:
  Function *Callee;
};

} // namespace veriopt

#endif // VERIOPT_IR_INSTRUCTION_H
