//===- Function.h - IR function and module -----------------------*- C++ -*-=//

#ifndef VERIOPT_IR_FUNCTION_H
#define VERIOPT_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <list>
#include <memory>
#include <unordered_map>

namespace veriopt {

/// A function: signature plus (for definitions) a CFG of basic blocks. Also
/// a Value so it can be a call target. Declarations (externals like @foo in
/// the paper's Fig. 9) have no blocks.
class Function : public Value {
public:
  Function(std::string Name, Type *ReturnTy, std::vector<Type *> ParamTys,
           bool IsDeclaration);

  /// Sever all dataflow edges up front: instruction operands may point into
  /// other blocks, at arguments, or at pooled constants, none of whose
  /// destruction order is otherwise safe.
  ~Function() override {
    for (auto &BB : Blocks)
      for (auto &I : *BB)
        I->dropAllReferences();
  }

  Type *getReturnType() const { return ReturnTy; }
  bool isDeclaration() const { return Declaration; }

  unsigned getNumParams() const {
    return static_cast<unsigned>(Args.size());
  }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  Type *getParamType(unsigned I) const { return getArg(I)->getType(); }

  using BlockList = std::list<std::unique_ptr<BasicBlock>>;
  using iterator = BlockList::iterator;
  using const_iterator = BlockList::const_iterator;

  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  const_iterator begin() const { return Blocks.begin(); }
  const_iterator end() const { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }

  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "function has no body");
    return Blocks.front().get();
  }

  /// Create and append a new block.
  BasicBlock *createBlock(std::string Name);

  /// Remove and destroy \p BB (callers must have fixed all references).
  void eraseBlock(BasicBlock *BB);

  /// Reorder the block list to match \p Order, which must be a permutation
  /// of the current blocks.
  void reorderBlocks(const std::vector<BasicBlock *> &Order);

  /// Blocks in list order (non-owning view).
  std::vector<BasicBlock *> blockPtrs() const;

  /// Block with the given name, or nullptr.
  BasicBlock *findBlock(const std::string &Name) const;

  /// Total instruction count across all blocks.
  unsigned instructionCount() const;

  /// Deep copy with fresh values/blocks. Constants are uniqued per function
  /// copy via the owning module-free pool (see Module::cloneFunction when a
  /// module context is needed; this clone keeps constants shared).
  std::unique_ptr<Function> clone() const;

  /// Constant pool: uniqued ConstantInt values owned by this function's
  /// module scope. For a standalone function, constants are owned here.
  ConstantInt *getConstant(Type *Ty, APInt64 V);
  ConstantInt *getConstant(unsigned Width, uint64_t Bits) {
    return getConstant(Type::getInt(Width), APInt64(Width, Bits));
  }
  ConstantInt *getBool(bool B) { return getConstant(1, B ? 1 : 0); }

  static bool classof(const Value *V) {
    return V->getValueID() == FunctionVal;
  }

private:
  Type *ReturnTy;
  bool Declaration;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockList Blocks;
  std::unordered_map<uint64_t, std::unique_ptr<ConstantInt>> Constants;
};

/// A collection of functions (one definition under test plus any externals
/// it calls).
class Module {
public:
  Module() = default;

  Function *addFunction(std::unique_ptr<Function> F) {
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }

  Function *getFunction(const std::string &Name) const;

  /// The first non-declaration function (the "function under test").
  Function *getMainFunction() const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace veriopt

#endif // VERIOPT_IR_FUNCTION_H
