//===- Verifier.h - Structural/SSA well-formedness checks --------*- C++ -*-=//
//
// Validates what the parser's local checks cannot: every block terminated,
// phi incoming lists exactly matching CFG predecessors, SSA dominance of
// defs over uses, and entry-block invariants. A function that parses AND
// verifies is "valid IR"; anything else is the Syntax-error category of the
// Alive2 taxonomy.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_VERIFIER_H
#define VERIOPT_IR_VERIFIER_H

#include <string>
#include <vector>

namespace veriopt {

class Function;
class Module;

/// All problems found in \p F, rendered as human-readable strings
/// (empty == well-formed).
std::vector<std::string> verifyFunction(const Function &F);

/// Convenience single-result form; \p FirstError receives the first problem.
bool isWellFormed(const Function &F, std::string *FirstError = nullptr);

} // namespace veriopt

#endif // VERIOPT_IR_VERIFIER_H
