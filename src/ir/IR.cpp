//===- IR.cpp - Value/Instruction/BasicBlock/Function implementation ------===//

#include "ir/Function.h"

#include <algorithm>
#include <unordered_map>

namespace veriopt {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::removeUser(Instruction *I) {
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing a non-user");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with itself");
  assert(New->getType() == getType() && "RAUW type mismatch");
  // replaceUsesOfWith mutates the user list; iterate over a snapshot.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *U : Snapshot)
    U->replaceUsesOfWith(this, New);
  assert(Users.empty() && "stale users after RAUW");
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

void Instruction::addOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUser(this);
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::replaceUsesOfWith(Value *From, Value *To) {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    if (Operands[I] == From)
      setOperand(I, To);
}

void Instruction::dropAllReferences() {
  for (Value *Op : Operands)
    Op->removeUser(this);
  Operands.clear();
}

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::URem:
    return "urem";
  case Opcode::SRem:
    return "srem";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::Select:
    return "select";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::GEP:
    return "getelementptr";
  case Opcode::Phi:
    return "phi";
  case Opcode::Br:
    return "br";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  }
  return "<invalid>";
}

const char *predName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  }
  return "<invalid>";
}

ICmpPred swappedPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
  case ICmpPred::NE:
    return P;
  case ICmpPred::UGT:
    return ICmpPred::ULT;
  case ICmpPred::UGE:
    return ICmpPred::ULE;
  case ICmpPred::ULT:
    return ICmpPred::UGT;
  case ICmpPred::ULE:
    return ICmpPred::UGE;
  case ICmpPred::SGT:
    return ICmpPred::SLT;
  case ICmpPred::SGE:
    return ICmpPred::SLE;
  case ICmpPred::SLT:
    return ICmpPred::SGT;
  case ICmpPred::SLE:
    return ICmpPred::SGE;
  }
  return P;
}

ICmpPred invertedPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return ICmpPred::NE;
  case ICmpPred::NE:
    return ICmpPred::EQ;
  case ICmpPred::UGT:
    return ICmpPred::ULE;
  case ICmpPred::UGE:
    return ICmpPred::ULT;
  case ICmpPred::ULT:
    return ICmpPred::UGE;
  case ICmpPred::ULE:
    return ICmpPred::UGT;
  case ICmpPred::SGT:
    return ICmpPred::SLE;
  case ICmpPred::SGE:
    return ICmpPred::SLT;
  case ICmpPred::SLT:
    return ICmpPred::SGE;
  case ICmpPred::SLE:
    return ICmpPred::SGT;
  }
  return P;
}

bool isSignedPred(ICmpPred P) {
  return P == ICmpPred::SGT || P == ICmpPred::SGE || P == ICmpPred::SLT ||
         P == ICmpPred::SLE;
}

bool isUnsignedPred(ICmpPred P) {
  return P == ICmpPred::UGT || P == ICmpPred::UGE || P == ICmpPred::ULT ||
         P == ICmpPred::ULE;
}

Value *PhiInst::getIncomingValueFor(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return getIncomingValue(I);
  return nullptr;
}

void PhiInst::removeIncoming(unsigned I) {
  assert(I < getNumIncoming() && "incoming index out of range");
  // Shift the remaining entries down, then drop the last operand slot.
  for (unsigned J = I; J + 1 < getNumIncoming(); ++J) {
    setIncomingValue(J, getIncomingValue(J + 1));
    IncomingBlocks[J] = IncomingBlocks[J + 1];
  }
  // Remove the final operand manually (no pop interface on the base).
  getIncomingValue(getNumIncoming() - 1); // bounds check in debug builds
  // Re-add all but last.
  std::vector<Value *> Vals;
  std::vector<BasicBlock *> BBs;
  for (unsigned J = 0; J + 1 < getNumIncoming(); ++J) {
    Vals.push_back(getIncomingValue(J));
    BBs.push_back(IncomingBlocks[J]);
  }
  dropAllReferences();
  IncomingBlocks.clear();
  for (unsigned J = 0; J < Vals.size(); ++J)
    addIncoming(Vals[J], BBs[J]);
}

void BrInst::makeUnconditional(BasicBlock *Dest) {
  assert(isConditional() && "already unconditional");
  dropAllReferences();
  Succs.clear();
  Succs.push_back(Dest);
}

CallInst::CallInst(Function *Callee, Type *RetTy,
                   const std::vector<Value *> &Args)
    : Instruction(Opcode::Call, RetTy), Callee(Callee) {
  for (Value *A : Args)
    addOperand(A);
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

BasicBlock::iterator BasicBlock::find(Instruction *I) {
  for (auto It = Insts.begin(); It != Insts.end(); ++It)
    if (It->get() == I)
      return It;
  return Insts.end();
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  auto It = find(Pos);
  assert(It != Insts.end() && "insertion point not in this block");
  I->setParent(this);
  return Insts.insert(It, std::move(I))->get();
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing an instruction that still has uses");
  auto It = find(I);
  assert(It != Insts.end() && "erasing an instruction not in this block");
  Insts.erase(It);
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  auto It = find(I);
  assert(It != Insts.end() && "removing an instruction not in this block");
  std::unique_ptr<Instruction> Out = std::move(*It);
  Insts.erase(It);
  Out->setParent(nullptr);
  return Out;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Out;
  for (const auto &I : Insts) {
    auto *P = dyn_cast<PhiInst>(I.get());
    if (!P)
      break;
    Out.push_back(P);
  }
  return Out;
}

Instruction *BasicBlock::getFirstNonPhi() const {
  for (const auto &I : Insts)
    if (!isa<PhiInst>(I.get()))
      return I.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(std::string Name, Type *ReturnTy,
                   std::vector<Type *> ParamTys, bool IsDeclaration)
    : Value(FunctionVal, Type::getPtr()), ReturnTy(ReturnTy),
      Declaration(IsDeclaration) {
  setName(std::move(Name));
  for (unsigned I = 0; I < ParamTys.size(); ++I)
    Args.push_back(std::make_unique<Argument>(ParamTys[I], "", I));
}

BasicBlock *Function::createBlock(std::string Name) {
  Blocks.push_back(std::make_unique<BasicBlock>(std::move(Name)));
  Blocks.back()->setParent(this);
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  // Drop dataflow references first so ordering of destruction is irrelevant.
  for (auto &I : *BB)
    I->dropAllReferences();
  for (auto It = Blocks.begin(); It != Blocks.end(); ++It) {
    if (It->get() == BB) {
      // Destroy instructions in reverse to respect the no-users invariant.
      Blocks.erase(It);
      return;
    }
  }
  assert(false && "block not in this function");
}

void Function::reorderBlocks(const std::vector<BasicBlock *> &Order) {
  assert(Order.size() == Blocks.size() && "order is not a permutation");
  std::unordered_map<BasicBlock *, std::unique_ptr<BasicBlock>> Pool;
  for (auto &BB : Blocks)
    Pool[BB.get()] = std::move(BB);
  Blocks.clear();
  for (BasicBlock *BB : Order) {
    auto It = Pool.find(BB);
    assert(It != Pool.end() && "order references a foreign block");
    Blocks.push_back(std::move(It->second));
    Pool.erase(It);
  }
  assert(Pool.empty() && "order dropped blocks");
}

std::vector<BasicBlock *> Function::blockPtrs() const {
  std::vector<BasicBlock *> Out;
  Out.reserve(Blocks.size());
  for (const auto &BB : Blocks)
    Out.push_back(BB.get());
  return Out;
}

BasicBlock *Function::findBlock(const std::string &Name) const {
  for (const auto &BB : Blocks)
    if (BB->getName() == Name)
      return BB.get();
  return nullptr;
}

unsigned Function::instructionCount() const {
  unsigned N = 0;
  for (const auto &BB : Blocks)
    N += static_cast<unsigned>(BB->size());
  return N;
}

ConstantInt *Function::getConstant(Type *Ty, APInt64 V) {
  assert(Ty->isInteger() && "constants are integer-only");
  uint64_t Key = (static_cast<uint64_t>(Ty->getBitWidth()) << 58) ^ V.zext();
  auto It = Constants.find(Key);
  if (It != Constants.end()) {
    // Key collisions are impossible: the width tag occupies bits a 64-bit
    // value of width < 64 cannot set, and width 64 uses the full value.
    if (It->second->getType() == Ty && It->second->getValue() == V)
      return It->second.get();
  }
  auto C = std::make_unique<ConstantInt>(Ty, V);
  ConstantInt *Out = C.get();
  Constants[Key] = std::move(C);
  return Out;
}

std::unique_ptr<Function> Function::clone() const {
  std::vector<Type *> ParamTys;
  for (const auto &A : Args)
    ParamTys.push_back(A->getType());
  auto NewF =
      std::make_unique<Function>(getName(), ReturnTy, ParamTys, Declaration);
  for (unsigned I = 0; I < Args.size(); ++I)
    NewF->getArg(I)->setName(Args[I]->getName());
  if (Declaration)
    return NewF;

  std::unordered_map<const Value *, Value *> VMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BMap;
  for (unsigned I = 0; I < Args.size(); ++I)
    VMap[Args[I].get()] = NewF->getArg(I);

  for (const auto &BB : Blocks)
    BMap[BB.get()] = NewF->createBlock(BB->getName());

  auto MapValue = [&](Value *V) -> Value * {
    if (auto *C = dyn_cast<ConstantInt>(V))
      return NewF->getConstant(C->getType(), C->getValue());
    if (isa<Function>(V))
      return V; // callee declarations are shared
    auto It = VMap.find(V);
    assert(It != VMap.end() && "operand not yet mapped (def after use?)");
    return It->second;
  };

  // First pass: create instructions; phi operands are patched afterwards
  // since they may reference values defined later.
  std::vector<std::pair<const PhiInst *, PhiInst *>> Phis;
  for (const auto &BB : Blocks) {
    BasicBlock *NewBB = BMap[BB.get()];
    for (const auto &IPtr : *BB) {
      const Instruction *I = IPtr.get();
      std::unique_ptr<Instruction> NewI;
      switch (I->getOpcode()) {
      case Opcode::ICmp: {
        const auto *C = cast<ICmpInst>(I);
        NewI = std::make_unique<ICmpInst>(C->getPredicate(),
                                          MapValue(C->getLHS()),
                                          MapValue(C->getRHS()));
        break;
      }
      case Opcode::Select: {
        const auto *S = cast<SelectInst>(I);
        NewI = std::make_unique<SelectInst>(MapValue(S->getCondition()),
                                            MapValue(S->getTrueValue()),
                                            MapValue(S->getFalseValue()));
        break;
      }
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::Trunc: {
        const auto *C = cast<CastInst>(I);
        NewI = std::make_unique<CastInst>(I->getOpcode(),
                                          MapValue(C->getSrc()), I->getType());
        break;
      }
      case Opcode::Alloca:
        NewI = std::make_unique<AllocaInst>(
            cast<AllocaInst>(I)->getAllocatedType());
        break;
      case Opcode::Load: {
        const auto *L = cast<LoadInst>(I);
        NewI = std::make_unique<LoadInst>(L->getType(),
                                          MapValue(L->getPointer()));
        break;
      }
      case Opcode::Store: {
        const auto *S = cast<StoreInst>(I);
        NewI = std::make_unique<StoreInst>(MapValue(S->getValueOperand()),
                                           MapValue(S->getPointer()));
        break;
      }
      case Opcode::GEP: {
        const auto *G = cast<GEPInst>(I);
        NewI = std::make_unique<GEPInst>(MapValue(G->getPointer()),
                                         MapValue(G->getOffset()));
        break;
      }
      case Opcode::Phi: {
        auto P = std::make_unique<PhiInst>(I->getType());
        Phis.push_back({cast<PhiInst>(I), P.get()});
        NewI = std::move(P);
        break;
      }
      case Opcode::Br: {
        const auto *B = cast<BrInst>(I);
        if (B->isConditional())
          NewI = std::make_unique<BrInst>(MapValue(B->getCondition()),
                                          BMap[B->getTrueSuccessor()],
                                          BMap[B->getFalseSuccessor()]);
        else
          NewI = std::make_unique<BrInst>(BMap[B->getSuccessor(0)]);
        break;
      }
      case Opcode::Ret: {
        const auto *R = cast<RetInst>(I);
        if (R->hasReturnValue())
          NewI = std::make_unique<RetInst>(MapValue(R->getReturnValue()));
        else
          NewI = std::make_unique<RetInst>();
        break;
      }
      case Opcode::Call: {
        const auto *C = cast<CallInst>(I);
        std::vector<Value *> NewArgs;
        for (unsigned A = 0; A < C->getNumArgs(); ++A)
          NewArgs.push_back(MapValue(C->getArg(A)));
        NewI = std::make_unique<CallInst>(C->getCallee(), C->getType(),
                                          NewArgs);
        break;
      }
      default: {
        assert(I->isBinaryOp() && "unhandled opcode in clone");
        const auto *B = cast<BinaryInst>(I);
        NewI = std::make_unique<BinaryInst>(I->getOpcode(),
                                            MapValue(B->getLHS()),
                                            MapValue(B->getRHS()));
        break;
      }
      }
      NewI->setNUW(I->hasNUW());
      NewI->setNSW(I->hasNSW());
      NewI->setExact(I->isExact());
      NewI->setName(I->getName());
      Instruction *Placed = NewBB->push_back(std::move(NewI));
      VMap[I] = Placed;
    }
  }

  // Second pass: wire up phi incoming edges.
  for (auto &[OldPhi, NewPhi] : Phis)
    for (unsigned I = 0; I < OldPhi->getNumIncoming(); ++I)
      NewPhi->addIncoming(MapValue(OldPhi->getIncomingValue(I)),
                          BMap[OldPhi->getIncomingBlock(I)]);

  return NewF;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

Function *Module::getMainFunction() const {
  for (const auto &F : Functions)
    if (!F->isDeclaration())
      return F.get();
  return nullptr;
}

} // namespace veriopt
