//===- BasicBlock.h - CFG node owning an instruction list --------*- C++ -*-=//

#ifndef VERIOPT_IR_BASICBLOCK_H
#define VERIOPT_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>
#include <memory>
#include <string>

namespace veriopt {

class Function;

/// A straight-line sequence of instructions ending (when well-formed) in a
/// terminator. Owns its instructions; iteration order is program order.
/// BasicBlocks are deliberately not Values: branch targets and phi incoming
/// blocks are plain pointers, which keeps the use-tracking machinery to
/// dataflow only.
class BasicBlock {
public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}

  /// Sever all dataflow edges before destroying instructions so destruction
  /// order within (and across) blocks cannot dangle.
  ~BasicBlock() {
    for (auto &I : Insts)
      I->dropAllReferences();
  }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block terminator, or nullptr if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  /// Append; takes ownership.
  Instruction *push_back(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Insert \p I immediately before \p Pos (which must be in this block).
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Remove and destroy \p I (must be in this block; must have no users).
  void erase(Instruction *I);

  /// Remove \p I from the list without destroying it.
  std::unique_ptr<Instruction> remove(Instruction *I);

  /// Position of \p I within the block, or end().
  iterator find(Instruction *I);

  /// Phi nodes at the head of the block.
  std::vector<PhiInst *> phis() const;

  /// First non-phi instruction (insertion point for lowered code).
  Instruction *getFirstNonPhi() const;

private:
  std::string Name;
  Function *Parent = nullptr;
  InstList Insts;
};

} // namespace veriopt

#endif // VERIOPT_IR_BASICBLOCK_H
