//===- Type.cpp - Types of the LLVM-IR subset -------------------------------//

#include "ir/Type.h"

namespace veriopt {

Type *Type::getVoid() {
  static Type T(VoidTy, 0);
  return &T;
}

Type *Type::getInt(unsigned BitWidth) {
  assert(isLegalIntWidth(BitWidth) && "illegal integer width");
  static Type I1(IntegerTy, 1);
  static Type I8(IntegerTy, 8);
  static Type I16(IntegerTy, 16);
  static Type I32(IntegerTy, 32);
  static Type I64(IntegerTy, 64);
  switch (BitWidth) {
  case 1:
    return &I1;
  case 8:
    return &I8;
  case 16:
    return &I16;
  case 32:
    return &I32;
  default:
    return &I64;
  }
}

Type *Type::getPtr() {
  static Type T(PointerTy, 0);
  return &T;
}

unsigned Type::getStoreSize() const {
  switch (K) {
  case VoidTy:
    return 0;
  case PointerTy:
    return 8;
  case IntegerTy:
    return Width <= 8 ? 1 : Width / 8;
  }
  return 0;
}

std::string Type::getName() const {
  switch (K) {
  case VoidTy:
    return "void";
  case PointerTy:
    return "ptr";
  case IntegerTy:
    return "i" + std::to_string(Width);
  }
  return "<invalid>";
}

} // namespace veriopt
