//===- Value.h - SSA value hierarchy -----------------------------*- C++ -*-=//
//
// Base of the IR value hierarchy: Argument, ConstantInt, Function (usable as
// a call target), parser Placeholders, and Instruction (Instruction.h).
// Kind discrimination follows the LLVM custom-RTTI idiom: a per-object
// SubclassID drives isa<>/cast<>/dyn_cast<> (support/Casting.h).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_VALUE_H
#define VERIOPT_IR_VALUE_H

#include "ir/Type.h"
#include "support/APInt64.h"
#include "support/Casting.h"

#include <string>
#include <vector>

namespace veriopt {

class Instruction;

/// Base class of everything that can appear as an instruction operand.
///
/// Tracks its users (instructions; one entry per operand slot that refers to
/// this value) so replaceAllUsesWith and hasOneUse work as in LLVM.
class Value {
public:
  /// Discriminator. Instructions occupy [FirstInstruction, ...) with the
  /// opcode encoded as an offset, so subclass classof() can test ranges.
  enum ValueID : unsigned {
    ArgumentVal,
    ConstantIntVal,
    FunctionVal,
    PlaceholderVal,
    FirstInstruction, // Instruction opcodes start here.
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  unsigned getValueID() const { return SubclassID; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  /// Users of this value; contains one entry per referencing operand slot,
  /// so a user appears twice if it uses the value twice.
  const std::vector<Instruction *> &users() const { return Users; }
  unsigned getNumUses() const { return static_cast<unsigned>(Users.size()); }
  bool hasOneUse() const { return Users.size() == 1; }
  bool hasUses() const { return !Users.empty(); }

  /// Rewrite every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

protected:
  Value(unsigned SubclassID, Type *Ty) : SubclassID(SubclassID), Ty(Ty) {}

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  unsigned SubclassID;
  Type *Ty;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, unsigned Index)
      : Value(ArgumentVal, Ty), Index(Index) {
    setName(std::move(Name));
  }

  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getValueID() == ArgumentVal;
  }

private:
  unsigned Index;
};

/// An integer constant. Uniqued per (type, bits) by the owning Module.
class ConstantInt : public Value {
public:
  ConstantInt(Type *Ty, APInt64 Val) : Value(ConstantIntVal, Ty), Val(Val) {
    assert(Ty->isInteger() && Ty->getBitWidth() == Val.width() &&
           "constant width mismatch");
  }

  const APInt64 &getValue() const { return Val; }
  bool isZero() const { return Val.isZero(); }
  bool isOne() const { return Val.isOne(); }
  bool isAllOnes() const { return Val.isAllOnes(); }

  static bool classof(const Value *V) {
    return V->getValueID() == ConstantIntVal;
  }

private:
  APInt64 Val;
};

/// Parser-internal forward reference; never survives a successful parse.
class Placeholder : public Value {
public:
  explicit Placeholder(Type *Ty) : Value(PlaceholderVal, Ty) {}

  static bool classof(const Value *V) {
    return V->getValueID() == PlaceholderVal;
  }
};

} // namespace veriopt

#endif // VERIOPT_IR_VALUE_H
