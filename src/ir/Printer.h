//===- Printer.h - Textual IR emission ---------------------------*- C++ -*-=//
//
// Renders modules/functions in LLVM-flavoured textual form. Unnamed values
// and blocks receive sequential %N numbering exactly once per print, in the
// LLVM style (arguments, then blocks/instructions in program order).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_PRINTER_H
#define VERIOPT_IR_PRINTER_H

#include <string>

namespace veriopt {

class Function;
class Module;
class Instruction;

/// Print a whole module (declarations first, then definitions).
std::string printModule(const Module &M);

/// Print a single function definition or declaration.
std::string printFunction(const Function &F);

} // namespace veriopt

#endif // VERIOPT_IR_PRINTER_H
