//===- Verifier.cpp - Structural/SSA well-formedness checks ------------------//

#include "ir/Verifier.h"

#include "analysis/CFG.h"
#include "ir/Function.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace veriopt {

namespace {

std::string blockLabel(const BasicBlock *BB) {
  return BB->getName().empty() ? std::string("<entry>") : BB->getName();
}

std::string valueLabel(const Value *V) {
  if (V->hasName())
    return "%" + V->getName();
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return C->getValue().toString();
  return "<unnamed " + std::string(isa<Instruction>(V)
                                       ? cast<Instruction>(V)->getOpcodeName()
                                       : "value") +
         ">";
}

} // namespace

std::vector<std::string> verifyFunction(const Function &F) {
  std::vector<std::string> Errors;
  auto err = [&](const std::string &Msg) { Errors.push_back(Msg); };

  if (F.isDeclaration())
    return Errors;
  if (F.empty()) {
    err("function '@" + F.getName() + "' has no body");
    return Errors;
  }

  // Every block must end in exactly one terminator (terminators only last).
  for (const auto &BB : F) {
    if (BB->empty()) {
      err("block '" + blockLabel(BB.get()) + "' is empty");
      continue;
    }
    if (!BB->getTerminator())
      err("block '" + blockLabel(BB.get()) + "' does not end in a terminator");
    unsigned Idx = 0, Last = static_cast<unsigned>(BB->size()) - 1;
    bool SeenNonPhi = false;
    for (const auto &I : *BB) {
      if (I->isTerminator() && Idx != Last)
        err("terminator in the middle of block '" + blockLabel(BB.get()) +
            "'");
      if (isa<PhiInst>(I.get())) {
        if (SeenNonPhi)
          err("phi after non-phi in block '" + blockLabel(BB.get()) + "'");
      } else {
        SeenNonPhi = true;
      }
      if (I->getParent() != BB.get())
        err("instruction parent link is stale in block '" +
            blockLabel(BB.get()) + "'");
      ++Idx;
    }
  }
  if (!Errors.empty())
    return Errors; // CFG construction needs terminators

  CFG G(F);

  // Entry block must have no predecessors and no phis.
  BasicBlock *Entry = F.getEntryBlock();
  if (!G.preds(Entry).empty())
    err("entry block has predecessors");
  if (!Entry->phis().empty())
    err("entry block contains phi nodes");

  // Branch targets must belong to this function.
  std::unordered_set<const BasicBlock *> Owned;
  for (const auto &BB : F)
    Owned.insert(BB.get());
  for (const auto &BB : F)
    for (BasicBlock *S : G.succs(BB.get()))
      if (!Owned.count(S))
        err("branch from '" + blockLabel(BB.get()) +
            "' targets a foreign block");

  // Phi incoming lists must match predecessors exactly (as multisets).
  for (const auto &BB : F) {
    if (!G.isReachable(BB.get()))
      continue;
    auto PredList = G.preds(BB.get());
    std::multiset<const BasicBlock *> PredSet(PredList.begin(),
                                              PredList.end());
    for (PhiInst *P : BB->phis()) {
      std::multiset<const BasicBlock *> InSet;
      for (unsigned I = 0; I < P->getNumIncoming(); ++I)
        InSet.insert(P->getIncomingBlock(I));
      if (InSet != PredSet)
        err("phi " + valueLabel(P) + " in block '" + blockLabel(BB.get()) +
            "' does not cover its predecessors exactly");
    }
  }

  // Return types must match; ret must exist on some path (not checked: the
  // interpreter treats infinite loops as timeouts).
  for (const auto &BB : F) {
    Instruction *T = BB->getTerminator();
    if (auto *R = dyn_cast<RetInst>(T)) {
      if (F.getReturnType()->isVoid() != !R->hasReturnValue())
        err("ret form does not match function return type");
      else if (R->hasReturnValue() &&
               R->getReturnValue()->getType() != F.getReturnType())
        err("ret value type does not match function return type");
    }
  }

  // No placeholders may survive parsing; operands must be sane.
  for (const auto &BB : F)
    for (const auto &I : *BB)
      for (Value *Op : I->operands()) {
        if (isa<Placeholder>(Op))
          err("unresolved placeholder operand in " + valueLabel(I.get()));
        if (auto *OpI = dyn_cast<Instruction>(Op)) {
          if (!OpI->getParent() || OpI->getParent()->getParent() != &F)
            err("operand " + valueLabel(Op) + " of " + valueLabel(I.get()) +
                " belongs to another function");
        }
      }
  if (!Errors.empty())
    return Errors;

  // SSA dominance: every def dominates each of its uses.
  DominatorTree DT(F);
  for (const auto &BB : F) {
    if (!G.isReachable(BB.get()))
      continue;
    for (const auto &I : *BB) {
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx) {
        auto *Def = dyn_cast<Instruction>(I->getOperand(OpIdx));
        if (!Def)
          continue;
        if (!DT.dominatesUse(Def, I.get(), OpIdx))
          err("definition of " + valueLabel(Def) +
              " does not dominate its use in " + valueLabel(I.get()));
      }
    }
  }

  return Errors;
}

bool isWellFormed(const Function &F, std::string *FirstError) {
  auto Errors = verifyFunction(F);
  if (Errors.empty())
    return true;
  if (FirstError)
    *FirstError = Errors.front();
  return false;
}

} // namespace veriopt
