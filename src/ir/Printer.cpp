//===- Printer.cpp - Textual IR emission ------------------------------------//

#include "ir/Printer.h"

#include "ir/Function.h"

#include <sstream>
#include <unordered_map>

namespace veriopt {

namespace {

/// Per-function printing context: assigns stable names to values and blocks.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { number(); }

  std::string print() {
    std::ostringstream OS;
    OS << (F.isDeclaration() ? "declare " : "define ")
       << F.getReturnType()->getName() << " @" << F.getName() << "(";
    for (unsigned I = 0; I < F.getNumParams(); ++I) {
      if (I)
        OS << ", ";
      OS << F.getParamType(I)->getName();
      if (!F.isDeclaration())
        OS << " %" << valueName(F.getArg(I));
    }
    OS << ")";
    if (F.isDeclaration()) {
      OS << "\n";
      return OS.str();
    }
    OS << " {\n";
    bool First = true;
    for (const auto &BB : F) {
      if (!First)
        OS << "\n";
      OS << blockName(BB.get()) << ":\n";
      for (const auto &I : *BB)
        OS << "  " << renderInst(*I) << "\n";
      First = false;
    }
    OS << "}\n";
    return OS.str();
  }

private:
  void number() {
    unsigned Counter = 0;
    auto assign = [&](const Value *V) {
      if (V->hasName())
        Names[V] = V->getName();
      else
        Names[V] = std::to_string(Counter++);
    };
    for (unsigned I = 0; I < F.getNumParams(); ++I)
      assign(F.getArg(I));
    if (F.isDeclaration())
      return;
    for (const auto &BB : F) {
      if (BB->getName().empty())
        BlockNames[BB.get()] = std::to_string(Counter++);
      else
        BlockNames[BB.get()] = BB->getName();
      for (const auto &I : *BB)
        if (!I->getType()->isVoid())
          assign(I.get());
    }
  }

  std::string valueName(const Value *V) const {
    auto It = Names.find(V);
    assert(It != Names.end() && "value was not numbered");
    return It->second;
  }

  std::string blockName(const BasicBlock *BB) const {
    auto It = BlockNames.find(BB);
    assert(It != BlockNames.end() && "block was not numbered");
    return It->second;
  }

  /// "i32 %x" or "i32 7" or "i1 true".
  std::string typedOperand(const Value *V) const {
    return V->getType()->getName() + " " + operand(V);
  }

  std::string operand(const Value *V) const {
    if (const auto *C = dyn_cast<ConstantInt>(V)) {
      if (C->getType()->isBool())
        return C->isZero() ? "false" : "true";
      return C->getValue().toString(/*Signed=*/true);
    }
    return "%" + valueName(V);
  }

  std::string flags(const Instruction &I) const {
    std::string Out;
    if (I.hasNUW())
      Out += " nuw";
    if (I.hasNSW())
      Out += " nsw";
    if (I.isExact())
      Out += " exact";
    return Out;
  }

  std::string renderInst(const Instruction &I) const {
    std::ostringstream OS;
    if (!I.getType()->isVoid())
      OS << "%" << valueName(&I) << " = ";
    switch (I.getOpcode()) {
    case Opcode::ICmp: {
      const auto &C = *cast<ICmpInst>(&I);
      OS << "icmp " << predName(C.getPredicate()) << " "
         << typedOperand(C.getLHS()) << ", " << operand(C.getRHS());
      break;
    }
    case Opcode::Select: {
      const auto &S = *cast<SelectInst>(&I);
      OS << "select " << typedOperand(S.getCondition()) << ", "
         << typedOperand(S.getTrueValue()) << ", "
         << typedOperand(S.getFalseValue());
      break;
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc: {
      const auto &C = *cast<CastInst>(&I);
      OS << I.getOpcodeName() << " " << typedOperand(C.getSrc()) << " to "
         << I.getType()->getName();
      break;
    }
    case Opcode::Alloca:
      OS << "alloca " << cast<AllocaInst>(&I)->getAllocatedType()->getName();
      break;
    case Opcode::Load: {
      const auto &L = *cast<LoadInst>(&I);
      OS << "load " << I.getType()->getName() << ", "
         << typedOperand(L.getPointer());
      break;
    }
    case Opcode::Store: {
      const auto &S = *cast<StoreInst>(&I);
      OS << "store " << typedOperand(S.getValueOperand()) << ", "
         << typedOperand(S.getPointer());
      break;
    }
    case Opcode::GEP: {
      const auto &G = *cast<GEPInst>(&I);
      OS << "getelementptr i8, " << typedOperand(G.getPointer()) << ", "
         << typedOperand(G.getOffset());
      break;
    }
    case Opcode::Phi: {
      const auto &P = *cast<PhiInst>(&I);
      OS << "phi " << I.getType()->getName() << " ";
      for (unsigned J = 0; J < P.getNumIncoming(); ++J) {
        if (J)
          OS << ", ";
        OS << "[ " << operand(P.getIncomingValue(J)) << ", %"
           << blockName(P.getIncomingBlock(J)) << " ]";
      }
      break;
    }
    case Opcode::Br: {
      const auto &B = *cast<BrInst>(&I);
      if (B.isConditional())
        OS << "br " << typedOperand(B.getCondition()) << ", label %"
           << blockName(B.getTrueSuccessor()) << ", label %"
           << blockName(B.getFalseSuccessor());
      else
        OS << "br label %" << blockName(B.getSuccessor(0));
      break;
    }
    case Opcode::Ret: {
      const auto &R = *cast<RetInst>(&I);
      if (R.hasReturnValue())
        OS << "ret " << typedOperand(R.getReturnValue());
      else
        OS << "ret void";
      break;
    }
    case Opcode::Call: {
      const auto &C = *cast<CallInst>(&I);
      OS << "call " << I.getType()->getName() << " @"
         << C.getCallee()->getName() << "(";
      for (unsigned A = 0; A < C.getNumArgs(); ++A) {
        if (A)
          OS << ", ";
        OS << typedOperand(C.getArg(A));
      }
      OS << ")";
      break;
    }
    default: {
      assert(I.isBinaryOp() && "unhandled opcode in printer");
      const auto &B = *cast<BinaryInst>(&I);
      OS << I.getOpcodeName() << flags(I) << " " << typedOperand(B.getLHS())
         << ", " << operand(B.getRHS());
      break;
    }
    }
    return OS.str();
  }

  const Function &F;
  std::unordered_map<const Value *, std::string> Names;
  std::unordered_map<const BasicBlock *, std::string> BlockNames;
};

} // namespace

std::string printFunction(const Function &F) {
  return FunctionPrinter(F).print();
}

std::string printModule(const Module &M) {
  std::string Out;
  for (const auto &F : M.functions())
    if (F->isDeclaration())
      Out += printFunction(*F);
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (!Out.empty())
      Out += "\n";
    Out += printFunction(*F);
  }
  return Out;
}

} // namespace veriopt
