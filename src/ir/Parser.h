//===- Parser.h - Textual IR parser ------------------------------*- C++ -*-=//
//
// Parses the LLVM-flavoured textual dialect. Accepts both the canonical form
// the Printer emits (opaque ptr, byte GEPs) and a tolerant superset covering
// the paper's examples: typed pointers (i64*), struct types with struct GEPs
// (lowered to byte offsets), bitcasts between pointers (folded away),
// attribute noise (dso_local, noundef, #0, align), and numeric block labels.
//
// Parse failure is the "Syntax error" outcome of the Alive2-style taxonomy,
// so the parser must reject malformed IR rather than guess.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_IR_PARSER_H
#define VERIOPT_IR_PARSER_H

#include "ir/Function.h"
#include "support/ErrorOr.h"

#include <memory>
#include <string>

namespace veriopt {

/// Parse a whole module (struct declarations, declares, defines).
ErrorOr<std::unique_ptr<Module>> parseModule(const std::string &Text);

/// Convenience: parse a module and return its first defined function;
/// fails if there is none.
ErrorOr<std::unique_ptr<Module>> parseModuleExpectingFunction(
    const std::string &Text);

} // namespace veriopt

#endif // VERIOPT_IR_PARSER_H
