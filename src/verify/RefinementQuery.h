//===- RefinementQuery.h - Shared-source refinement queries ------*- C++ -*-=//
//
// The incremental core under both verification front doors. A refinement
// query splits into a candidate-independent half (falsification runs of the
// source, its symbolic encoding, the CNF of its terms) and a per-candidate
// half; SourceEncoding captures the former once so a group of candidates
// against one source — a GRPO group — pays for it once.
//
// Bit-identity contract: for a fixed (source, candidate, options) triple,
// the verdict, DiagKind, diagnostic text, counterexample, SolverConflicts
// and FuelSpent are identical whether the encoding is built fresh per call
// (the sequential oracle, verifyRefinement / verifyCandidateText) or shared
// across a group at any thread count (BatchVerifier). Three mechanisms make
// that hold:
//  - Fuel replay: the shared source-side work records its fuel charges
//    once; each candidate replays them against its own budget, so budget
//    exhaustion happens at exactly the point a fresh run would hit.
//  - Clone activation: the shared CNF prefix is never solved on directly by
//    group members; each candidate solves on an exact copy (QueryPrefix),
//    so SAT search trajectories — and conflict counts — match a fresh run.
//  - Structural interning: the shared BVContext hash-conses terms purely
//    structurally, so the terms a candidate builds are independent of which
//    other candidates built terms before it.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_REFINEMENTQUERY_H
#define VERIOPT_VERIFY_REFINEMENTQUERY_H

#include "interp/Interpreter.h"
#include "smt/Solver.h"
#include "verify/AliveLite.h"
#include "verify/Encoder.h"

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace veriopt {

/// Everything about a refinement query that does not depend on the
/// candidate: built once per (source, structural options) and shared by
/// every candidate in a group. Budget knobs (SolverConflictBudget,
/// FuelBudget) are *not* baked in — the retry ladder re-asks the same
/// encoding under scaled budgets — but the structural knobs (MaxPaths,
/// unroll bound, FalsifyTrials, ...) are, and must match at use sites.
struct SourceEncoding {
  const Function *Src = nullptr;
  VerifyOptions Opts; ///< options the encoding was built under

  BVContext Ctx;
  std::vector<const BVExpr *> ArgVars;
  ExternalWorld SrcWorld;
  FnEncoding SE;
  bool PointerParams = false; ///< any non-integer parameter

  /// One falsification trial's source half: the sampled arguments, the
  /// source execution under unlimited fuel, and the slice of FalsifyTrace
  /// holding its fuel charges.
  struct FalsifyTrial {
    std::vector<APInt64> Args;
    ExecResult SrcRes;
    size_t TraceBegin = 0, TraceEnd = 0;
  };
  std::vector<FalsifyTrial> Trials;
  std::vector<uint64_t> FalsifyTrace; ///< source interp charges, all trials
  std::vector<uint64_t> EncodeTrace;  ///< source symbolic-encode charges

  /// Retained CNF of the source terms; null when the source encoding is
  /// unusable (pointer params, unsupported construct, no complete path) —
  /// every candidate resolves before reaching SAT in those cases.
  std::unique_ptr<QueryPrefix> Prefix;

  /// Serializes the context-mutating build phase when group members verify
  /// concurrently (interning order changes, interned *structures* do not).
  std::mutex BuildMu;
};

/// Build the shared half for \p Src. Source-side fuel charges are recorded
/// under an unlimited token for later replay; structural limits still bound
/// the work.
std::unique_ptr<SourceEncoding> buildSourceEncoding(const Function &Src,
                                                    const VerifyOptions &Opts);

/// Verify \p Tgt against the prebuilt encoding. Mirrors verifyRefinement
/// exactly (same verdicts, diagnostics, conflict counts, FuelSpent).
/// \p Shared selects group mode: take SC.BuildMu around context mutation,
/// activate the prefix on a clone, and credit smt.clauses_retained. With
/// Shared = false the caller owns SC exclusively and the prefix is consumed
/// in place.
VerifyResult verifyAgainstEncoding(SourceEncoding &SC, const Function &Tgt,
                                   const VerifyOptions &Opts, bool Shared);

/// verifyCandidateText over a lazily provided encoding: identical guard
/// chain, verify.candidate span, and verify.* metrics. \p GetSC is invoked
/// only after the guard chain passes — candidates rejected at the
/// parse/screen stage never pay source-side work, shared encoding or not.
/// A null/empty provider (or one returning null) builds a fresh private
/// encoding after the guards pass (the sequential path).
VerifyResult
verifyCandidateTextOn(const std::function<SourceEncoding *()> &GetSC,
                      const Function &Src, const std::string &TgtText,
                      const VerifyOptions &Opts);

} // namespace veriopt

#endif // VERIOPT_VERIFY_REFINEMENTQUERY_H
