//===- RefinementQuery.cpp - Shared-source refinement queries -----------------//

#include "verify/RefinementQuery.h"

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <map>
#include <sstream>

namespace veriopt {

namespace {

std::string header(const Function &Src) {
  std::ostringstream OS;
  OS << "----------------------------------------\n"
     << "define " << Src.getReturnType()->getName() << " @" << Src.getName()
     << "\n";
  return OS.str();
}

std::string renderBindings(const std::vector<CexBinding> &Bs) {
  std::ostringstream OS;
  OS << "\nExample:\n";
  for (const CexBinding &B : Bs)
    OS << B.Name << " = " << B.Value.toString() << "\n";
  return OS.str();
}

/// Argument names as the diagnostics print them: "i32 %x".
std::string argLabel(const Function &F, unsigned I) {
  std::string Name = F.getArg(I)->hasName()
                         ? "%" + F.getArg(I)->getName()
                         : "%" + std::to_string(I);
  return F.getParamType(I)->getName() + " " + Name;
}

/// Sequence-compare two interpreter call logs (per-callee order and args).
bool callLogsMatch(const std::vector<CallEvent> &A,
                   const std::vector<CallEvent> &B) {
  if (A.size() != B.size())
    return false;
  std::map<std::string, std::vector<const CallEvent *>> ByCalleeA, ByCalleeB;
  for (const auto &E : A)
    ByCalleeA[E.Callee].push_back(&E);
  for (const auto &E : B)
    ByCalleeB[E.Callee].push_back(&E);
  if (ByCalleeA.size() != ByCalleeB.size())
    return false;
  for (auto &[Name, ListA] : ByCalleeA) {
    auto It = ByCalleeB.find(Name);
    if (It == ByCalleeB.end() || It->second.size() != ListA.size())
      return false;
    for (size_t I = 0; I < ListA.size(); ++I)
      if (ListA[I]->Args != It->second[I]->Args)
        return false;
  }
  return true;
}

/// Random + adversarial inputs for the falsification pre-pass. The first
/// six sweeps are corner sweeps with a *per-argument* corner index
/// (staggered by argument position, so mixed patterns like (0, 1) or
/// (INT_MAX, all-ones) get tried, not just all-same-corner tuples); every
/// later sweep is fully random.
std::vector<APInt64> sampleArgs(const Function &F, RNG &R, unsigned Trial) {
  std::vector<APInt64> Args;
  for (unsigned I = 0; I < F.getNumParams(); ++I) {
    unsigned W = F.getParamType(I)->getBitWidth();
    if (Trial >= 6) {
      Args.push_back(APInt64(W, R.next()));
      continue;
    }
    switch ((Trial + I) % 6) {
    case 0:
      Args.push_back(APInt64::zero(W));
      break;
    case 1:
      Args.push_back(APInt64::one(W));
      break;
    case 2:
      Args.push_back(APInt64::allOnes(W));
      break;
    case 3:
      Args.push_back(APInt64::signedMin(W));
      break;
    case 4:
      Args.push_back(APInt64::signedMax(W));
      break;
    default:
      Args.push_back(APInt64(W, R.next()));
      break;
    }
  }
  return Args;
}

/// Try to refute equivalence with concrete executions before any SMT work.
/// The source halves were executed at build time under a recording token;
/// here each trial *replays* its source charges against the candidate's own
/// budget (so exhaustion lands exactly where a fresh run's source interp
/// would have stopped) and runs only the target for real.
bool falsify(const SourceEncoding &SC, const Function &Tgt,
             const VerifyOptions &Opts, Fuel &F, VerifyResult &Out) {
  const Function &Src = *SC.Src;
  if (SC.PointerParams)
    return false;
  assert(SC.Trials.size() >= Opts.FalsifyTrials &&
         "encoding built with fewer falsification trials than requested");
  InterpOptions IOpts;
  IOpts.FuelTok = &F;
  for (unsigned Trial = 0; Trial < Opts.FalsifyTrials; ++Trial) {
    if (F.exhausted())
      return false;
    const SourceEncoding::FalsifyTrial &T = SC.Trials[Trial];
    if (!F.replay(SC.FalsifyTrace, T.TraceBegin, T.TraceEnd))
      continue; // source would have timed out under this budget
    const ExecResult &SR = T.SrcRes;
    if (SR.St != ExecResult::Ok || SR.RetPoison)
      continue; // source undefined/poison: target is unconstrained
    ExecResult TR = interpret(Tgt, T.Args, IOpts);
    if (TR.St == ExecResult::Timeout || TR.St == ExecResult::Unsupported)
      continue;

    DiagKind Kind = DiagKind::None;
    std::string Detail;
    if (TR.St == ExecResult::UndefinedBehavior) {
      Kind = DiagKind::UBIntroduced;
      Detail = "Target has undefined behavior where source is defined (" +
               TR.Reason + ")";
    } else if (!callLogsMatch(SR.Calls, TR.Calls)) {
      Kind = DiagKind::CallMismatch;
      Detail = "Mismatch in external calls";
    } else if (TR.RetPoison) {
      Kind = DiagKind::PoisonMismatch;
      Detail = "Target returns poison where source is well-defined";
    } else if (!SR.IsVoid && SR.RetVal != TR.RetVal) {
      Kind = DiagKind::ValueMismatch;
      Detail = "Value mismatch";
    }
    if (Kind == DiagKind::None)
      continue;

    Out.Status = VerifyStatus::NotEquivalent;
    Out.Kind = Kind;
    Out.FoundByFalsification = true;
    for (unsigned I = 0; I < Src.getNumParams(); ++I)
      Out.Counterexample.push_back({argLabel(Src, I), T.Args[I]});
    std::ostringstream OS;
    OS << header(Src) << "Transformation doesn't verify!\nERROR: " << Detail
       << "\n"
       << renderBindings(Out.Counterexample);
    if (Kind == DiagKind::ValueMismatch) {
      OS << "Source value: " << SR.RetVal.toString() << "\n"
         << "Target value: " << TR.RetVal.toString() << "\n";
    }
    Out.Diagnostic = OS.str();
    return true;
  }
  return false;
}

VerifyResult exhaustedResult(const Function &Src) {
  VerifyResult Out;
  Out.Status = VerifyStatus::Inconclusive;
  Out.Kind = DiagKind::ResourceExhausted;
  Out.Diagnostic =
      header(Src) + "Inconclusive: verification fuel budget exhausted\n";
  return Out;
}

/// The candidate-dependent half of a query, produced by the (locked) build
/// phase. Every term the SAT/classification phase needs is stashed here so
/// that phase never interns new nodes — context reads via stable node
/// pointers are safe concurrently with another candidate's build.
struct BuiltQuery {
  FnEncoding TE;
  ExternalWorld World; ///< per-candidate copy of the source world
  bool SrcFuelOut = false;
  bool Truncated = false;
  const BVExpr *CallMismatch = nullptr;
  const BVExpr *PoisonViol = nullptr;
  const BVExpr *Cex = nullptr;
  const BVExpr *RetS = nullptr; ///< source return term (null for void)
  const BVExpr *RetT = nullptr; ///< target return term (null for void)
  std::vector<const BVExpr *> ModelTerms;
};

VerifyResult verifyAgainstEncodingImpl(SourceEncoding &SC, const Function &Tgt,
                                       const VerifyOptions &Opts, Fuel &F,
                                       bool Shared) {
  const Function &Src = *SC.Src;
  VerifyResult Out;

  // Signatures must match exactly.
  bool SigOk = Src.getReturnType() == Tgt.getReturnType() &&
               Src.getNumParams() == Tgt.getNumParams();
  if (SigOk)
    for (unsigned I = 0; I < Src.getNumParams(); ++I)
      SigOk = SigOk && Src.getParamType(I) == Tgt.getParamType(I);
  if (!SigOk) {
    Out.Status = VerifyStatus::NotEquivalent;
    Out.Kind = DiagKind::SignatureMismatch;
    Out.Diagnostic = header(Src) +
                     "Transformation doesn't verify!\n"
                     "ERROR: Source and target signatures differ\n";
    return Out;
  }

  // Cheap refutation first (ablation: micro_components measures the win).
  if (Opts.FalsifyTrials > 0) {
    TRACE_SPAN("verify.falsify");
    if (falsify(SC, Tgt, Opts, F, Out))
      return Out;
  }
  if (F.exhausted())
    return exhaustedResult(Src);

  if (SC.PointerParams) {
    Out.Status = VerifyStatus::Inconclusive;
    Out.Kind = DiagKind::Unsupported;
    Out.Diagnostic = "Inconclusive: pointer-typed parameters are outside "
                     "the symbolic model\n";
    return Out;
  }

  // Build phase: replay the source encode's charges, then encode the
  // target into the shared context. Mutates the context, so group members
  // serialize here; interning is structural, so the resulting terms do not
  // depend on the serialization order.
  BuiltQuery Q;
  {
    std::unique_lock<std::mutex> Lock(SC.BuildMu, std::defer_lock);
    if (Shared)
      Lock.lock();
    {
      TRACE_SPAN("verify.encode");
      if (!F.replay(SC.EncodeTrace, 0, SC.EncodeTrace.size())) {
        // A fresh run encodes the source first; once its tank runs dry the
        // target encoder still charges its first block visit before
        // noticing. Reproduce that one charge so FuelSpent matches.
        F.consume(fuel::EncodeBlockVisit);
        Q.SrcFuelOut = true;
      } else {
        Q.World = SC.SrcWorld;
        EncodeLimits Limits;
        Limits.MaxPaths = Opts.MaxPaths;
        Limits.MaxBlockVisitsPerPath = Opts.MaxBlockVisitsPerPath;
        Limits.MaxStepsPerPath = Opts.MaxStepsPerPath;
        Limits.FuelTok = &F;
        Q.TE = encodeFunction(Tgt, SC.Ctx, SC.ArgVars, Q.World, Limits);
      }
    }

    if (Q.SrcFuelOut || Q.TE.FuelOut)
      return exhaustedResult(Src);
    if (SC.SE.Unsupported || Q.TE.Unsupported) {
      Out.Status = VerifyStatus::Inconclusive;
      Out.Kind = DiagKind::Unsupported;
      Out.Diagnostic =
          "Inconclusive: " +
          (SC.SE.Unsupported ? SC.SE.UnsupportedWhy : Q.TE.UnsupportedWhy) +
          "\n";
      return Out;
    }

    // No execution completed within the bound (e.g. the candidate loops
    // forever): nothing can be claimed, even in bounded mode.
    if (SC.SE.Paths.empty() || Q.TE.Paths.empty()) {
      Out.Status = VerifyStatus::Inconclusive;
      Out.Kind = DiagKind::LoopBound;
      Out.Diagnostic =
          "Inconclusive: no execution path completes within the unroll "
          "bound\n";
      return Out;
    }

    const FnEncoding &SE = SC.SE;
    const FnEncoding &TE = Q.TE;
    BVContext &Ctx = SC.Ctx;

    Q.Truncated = !SE.Truncated->isFalse() || !TE.Truncated->isFalse();
    if (Q.Truncated && Opts.StrictLoops) {
      Out.Status = VerifyStatus::Inconclusive;
      Out.Kind = DiagKind::LoopBound;
      Out.Diagnostic = "Inconclusive: loop unroll bound reached\n";
      return Out;
    }

    // Assumption region: inputs where both sides stayed within the unroll
    // bound (bounded translation validation, as in Alive2).
    const BVExpr *InBound =
        Ctx.and1(Ctx.not1(SE.Truncated), Ctx.not1(TE.Truncated));

    // Call-trace matching per (callee, occurrence).
    const BVExpr *CallMismatch = Ctx.falseVal();
    {
      std::map<std::pair<std::string, unsigned>,
               std::pair<std::vector<const CallRecord *>,
                         std::vector<const CallRecord *>>>
          ByKey;
      for (const CallRecord &Rec : SE.Calls)
        ByKey[{Rec.Callee, Rec.Index}].first.push_back(&Rec);
      for (const CallRecord &Rec : TE.Calls)
        ByKey[{Rec.Callee, Rec.Index}].second.push_back(&Rec);
      for (auto &[Key, Lists] : ByKey) {
        const BVExpr *SrcExec = Ctx.falseVal();
        for (const CallRecord *Rec : Lists.first)
          SrcExec = Ctx.or1(SrcExec, Rec->Guard);
        const BVExpr *TgtExec = Ctx.falseVal();
        for (const CallRecord *Rec : Lists.second)
          TgtExec = Ctx.or1(TgtExec, Rec->Guard);
        CallMismatch = Ctx.or1(CallMismatch, Ctx.ne(SrcExec, TgtExec));
        // Where both execute, arguments must agree.
        for (const CallRecord *SRec : Lists.first)
          for (const CallRecord *TRec : Lists.second) {
            const BVExpr *Both = Ctx.and1(SRec->Guard, TRec->Guard);
            if (Both->isFalse())
              continue;
            const BVExpr *ArgsDiffer = Ctx.falseVal();
            if (SRec->Args.size() != TRec->Args.size()) {
              ArgsDiffer = Ctx.trueVal();
            } else {
              for (size_t I = 0; I < SRec->Args.size(); ++I)
                ArgsDiffer = Ctx.or1(
                    ArgsDiffer, Ctx.ne(SRec->Args[I], TRec->Args[I]));
            }
            CallMismatch = Ctx.or1(CallMismatch, Ctx.and1(Both, ArgsDiffer));
          }
      }
    }
    Q.CallMismatch = CallMismatch;

    // Refinement violation condition.
    const BVExpr *SrcDefined = Ctx.not1(SE.UB);
    const BVExpr *Violation = TE.UB;
    Violation = Ctx.or1(Violation, CallMismatch);
    const BVExpr *ValueViol = Ctx.falseVal();
    Q.PoisonViol = Ctx.falseVal();
    if (!Src.getReturnType()->isVoid()) {
      Q.RetS = SE.returnTerm(Ctx);
      Q.RetT = TE.returnTerm(Ctx);
      const BVExpr *PoisS = SE.returnPoison(Ctx);
      const BVExpr *PoisT = TE.returnPoison(Ctx);
      assert(Q.RetS && Q.RetT && "non-void function without return paths");
      // When the source's return is non-poison, the target must return the
      // same non-poison value; a poison source return refines to anything.
      Q.PoisonViol = Ctx.and1(Ctx.not1(PoisS), PoisT);
      ValueViol = Ctx.and1(Ctx.not1(PoisS),
                           Ctx.and1(Ctx.not1(PoisT), Ctx.ne(Q.RetS, Q.RetT)));
      Violation = Ctx.or1(Violation, Ctx.or1(Q.PoisonViol, ValueViol));
    }
    Q.Cex = Ctx.and1(InBound, Ctx.and1(SrcDefined, Violation));

    // Extract a model over the arguments AND the external world so the
    // counterexample classification/rendering evaluates under the same
    // assignment the SAT solver found.
    Q.ModelTerms = SC.ArgVars;
    for (const BVExpr *WV : Q.World.vars())
      Q.ModelTerms.push_back(WV);
  } // build lock released; below only reads the context.

  SmtCheck Res;
  {
    TraceSpan SatSpan("verify.sat");
    if (Q.Cex->isFalse()) {
      Res.St = SmtCheck::Unsat; // checkSat's trivial short-circuit
    } else {
      assert(SC.Prefix && "usable source encoding must carry a CNF prefix");
      Res = Shared ? SC.Prefix->activate(Q.Cex, Q.ModelTerms,
                                         Opts.SolverConflictBudget, &F,
                                         /*CountRetained=*/true)
                   : SC.Prefix->activateInPlace(Q.Cex, Q.ModelTerms,
                                                Opts.SolverConflictBudget, &F);
    }
    SatSpan.arg(TraceArg::ofStr("result", Res.St == SmtCheck::Sat ? "sat"
                                          : Res.St == SmtCheck::Unsat
                                              ? "unsat"
                                              : "unknown"));
    SatSpan.arg(TraceArg::ofInt("conflicts",
                                static_cast<int64_t>(Res.Conflicts)));
  }
  Out.SolverConflicts = Res.Conflicts;

  if (Res.St == SmtCheck::Unknown) {
    Out.Status = VerifyStatus::Inconclusive;
    if (F.exhausted()) {
      Out.Kind = DiagKind::ResourceExhausted;
      Out.Diagnostic =
          header(Src) + "Inconclusive: verification fuel budget exhausted\n";
    } else {
      Out.Kind = DiagKind::SolverTimeout;
      Out.Diagnostic = "Inconclusive: SMT solver budget exhausted\n";
    }
    return Out;
  }

  if (Res.St == SmtCheck::Unsat) {
    Out.Status = VerifyStatus::Equivalent;
    Out.Kind = DiagKind::None;
    Out.BoundedOnly = Q.Truncated;
    std::ostringstream OS;
    OS << header(Src) << "Transformation seems to be correct!";
    if (Q.Truncated)
      OS << " (within unroll bound " << Opts.MaxBlockVisitsPerPath << ")";
    OS << "\n";
    Out.Diagnostic = OS.str();
    return Out;
  }

  // SAT: counterexample. Classify by evaluating the sub-conditions.
  Out.Status = VerifyStatus::NotEquivalent;
  auto evalTrue = [&](const BVExpr *E) {
    return SC.Ctx.evaluate(E, Res.Model).isOne();
  };
  if (evalTrue(Q.TE.UB))
    Out.Kind = DiagKind::UBIntroduced;
  else if (evalTrue(Q.CallMismatch))
    Out.Kind = DiagKind::CallMismatch;
  else if (evalTrue(Q.PoisonViol))
    Out.Kind = DiagKind::PoisonMismatch;
  else
    Out.Kind = DiagKind::ValueMismatch;

  for (unsigned I = 0; I < Src.getNumParams(); ++I) {
    APInt64 V = Res.Model.count(SC.ArgVars[I]->VarId)
                    ? Res.Model[SC.ArgVars[I]->VarId]
                    : APInt64::zero(SC.ArgVars[I]->Width);
    Out.Counterexample.push_back({argLabel(Src, I), V});
  }

  std::ostringstream OS;
  OS << header(Src) << "Transformation doesn't verify!\nERROR: ";
  switch (Out.Kind) {
  case DiagKind::UBIntroduced:
    OS << "Target is more poisonous/undefined than source";
    break;
  case DiagKind::CallMismatch:
    OS << "Mismatch in external calls";
    break;
  case DiagKind::PoisonMismatch:
    OS << "Target returns poison where source is well-defined";
    break;
  default:
    OS << "Value mismatch";
    break;
  }
  OS << "\n" << renderBindings(Out.Counterexample);
  if (Out.Kind == DiagKind::ValueMismatch &&
      !Src.getReturnType()->isVoid()) {
    OS << "Source value: "
       << SC.Ctx.evaluate(Q.RetS, Res.Model).toString() << "\n"
       << "Target value: "
       << SC.Ctx.evaluate(Q.RetT, Res.Model).toString() << "\n";
  }
  Out.Diagnostic = OS.str();
  return Out;
}

} // namespace

std::unique_ptr<SourceEncoding> buildSourceEncoding(const Function &Src,
                                                    const VerifyOptions &Opts) {
  auto SC = std::make_unique<SourceEncoding>();
  SC->Src = &Src;
  SC->Opts = Opts;

  for (unsigned I = 0; I < Src.getNumParams(); ++I)
    if (!Src.getParamType(I)->isInteger())
      SC->PointerParams = true;

  // Falsification source halves: run every trial once under an unlimited
  // recording token. The per-candidate pass replays each trial's charges
  // against its own budget, so sharing these runs never moves the point
  // where a given budget exhausts. Argument sampling consumes the RNG only
  // inside sampleArgs, so trial k's arguments are what a fresh run draws.
  if (Opts.FalsifyTrials > 0 && !SC->PointerParams) {
    RNG R(0xA11CE + Src.getNumParams());
    Fuel Rec;
    Rec.setTrace(&SC->FalsifyTrace);
    InterpOptions IOpts;
    IOpts.FuelTok = &Rec;
    for (unsigned Trial = 0; Trial < Opts.FalsifyTrials; ++Trial) {
      SourceEncoding::FalsifyTrial T;
      T.Args = sampleArgs(Src, R, Trial);
      T.TraceBegin = SC->FalsifyTrace.size();
      T.SrcRes = interpret(Src, T.Args, IOpts);
      T.TraceEnd = SC->FalsifyTrace.size();
      SC->Trials.push_back(std::move(T));
    }
  }
  if (SC->PointerParams)
    return SC; // every candidate resolves before needing the terms

  for (unsigned I = 0; I < Src.getNumParams(); ++I)
    SC->ArgVars.push_back(
        SC->Ctx.var(Src.getParamType(I)->getBitWidth(), argLabel(Src, I)));

  Fuel Rec;
  Rec.setTrace(&SC->EncodeTrace);
  EncodeLimits Limits;
  Limits.MaxPaths = Opts.MaxPaths;
  Limits.MaxBlockVisitsPerPath = Opts.MaxBlockVisitsPerPath;
  Limits.MaxStepsPerPath = Opts.MaxStepsPerPath;
  Limits.FuelTok = &Rec;
  SC->SE = encodeFunction(Src, SC->Ctx, SC->ArgVars, SC->SrcWorld, Limits);

  // Retain the source half's CNF when candidates can actually reach SAT
  // with it. The blast list is deterministic: argument variables, world
  // variables in map order, then the encoding's terms in a fixed order.
  if (!SC->SE.Unsupported && !SC->SE.Paths.empty()) {
    std::vector<const BVExpr *> PrefixTerms = SC->ArgVars;
    for (const BVExpr *WV : SC->SrcWorld.vars())
      PrefixTerms.push_back(WV);
    PrefixTerms.push_back(SC->SE.Truncated);
    PrefixTerms.push_back(SC->SE.UB);
    if (!Src.getReturnType()->isVoid()) {
      PrefixTerms.push_back(SC->SE.returnTerm(SC->Ctx));
      PrefixTerms.push_back(SC->SE.returnPoison(SC->Ctx));
    }
    for (const CallRecord &Rec2 : SC->SE.Calls) {
      PrefixTerms.push_back(Rec2.Guard);
      for (const BVExpr *A : Rec2.Args)
        PrefixTerms.push_back(A);
    }
    SC->Prefix = std::make_unique<QueryPrefix>(SC->Ctx, PrefixTerms);
  }
  return SC;
}

VerifyResult verifyAgainstEncoding(SourceEncoding &SC, const Function &Tgt,
                                   const VerifyOptions &Opts, bool Shared) {
  assert(SC.Opts.MaxPaths == Opts.MaxPaths &&
         SC.Opts.MaxBlockVisitsPerPath == Opts.MaxBlockVisitsPerPath &&
         SC.Opts.MaxStepsPerPath == Opts.MaxStepsPerPath &&
         SC.Opts.StrictLoops == Opts.StrictLoops &&
         SC.Opts.FalsifyTrials == Opts.FalsifyTrials &&
         "structural options must match the encoding; only budgets may vary");
  // One fuel token per verification: a deterministic total-work bound that
  // is independent of thread count and wall clock, so identical queries
  // yield bit-identical results everywhere.
  Fuel F(Opts.FuelBudget);
  VerifyResult Out = verifyAgainstEncodingImpl(SC, Tgt, Opts, F, Shared);
  Out.FuelSpent = F.spent();
  return Out;
}

static VerifyResult
verifyCandidateTextOnImpl(const std::function<SourceEncoding *()> &GetSC,
                          const Function &Src, const std::string &TgtText,
                          const VerifyOptions &Opts) {
  VerifyResult Out;
  // Adversarial-emission guard: refuse pathologically large candidates
  // before paying any parse cost.
  if (Opts.MaxCandidateBytes > 0 && TgtText.size() > Opts.MaxCandidateBytes) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic = header(Src) + "ERROR: Candidate exceeds maximum size (" +
                     std::to_string(TgtText.size()) + " > " +
                     std::to_string(Opts.MaxCandidateBytes) + " bytes)\n";
    return Out;
  }
  auto M = parseModule(TgtText);
  if (!M) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic = header(Src) + "ERROR: Could not parse transformed IR (" +
                     M.error().render() + ")\n";
    return Out;
  }
  Function *Tgt = M.value()->getMainFunction();
  if (!Tgt) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic =
        header(Src) + "ERROR: Transformed IR contains no function\n";
    return Out;
  }
  if (Opts.MaxCandidateInsts > 0 &&
      Tgt->instructionCount() > Opts.MaxCandidateInsts) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::StructureError;
    Out.Diagnostic = header(Src) +
                     "ERROR: Candidate exceeds maximum function size (" +
                     std::to_string(Tgt->instructionCount()) + " > " +
                     std::to_string(Opts.MaxCandidateInsts) +
                     " instructions)\n";
    return Out;
  }
  std::string Err;
  if (!isWellFormed(*Tgt, &Err)) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::StructureError;
    Out.Diagnostic =
        header(Src) + "ERROR: Transformed IR is ill-formed (" + Err + ")\n";
    return Out;
  }
  // Only now is source-side work unavoidable: materialize the shared
  // encoding (or build a private one). Guard failures above never pay it.
  if (SourceEncoding *SC = GetSC ? GetSC() : nullptr)
    return verifyAgainstEncoding(*SC, *Tgt, Opts, /*Shared=*/true);
  auto Fresh = buildSourceEncoding(Src, Opts);
  return verifyAgainstEncoding(*Fresh, *Tgt, Opts, /*Shared=*/false);
}

VerifyResult verifyCandidateTextOn(const std::function<SourceEncoding *()> &GetSC,
                                   const Function &Src,
                                   const std::string &TgtText,
                                   const VerifyOptions &Opts) {
  TraceSpan Span("verify.candidate");
  VerifyResult Out = verifyCandidateTextOnImpl(GetSC, Src, TgtText, Opts);
  if (Span.active()) {
    Span.arg(TraceArg::ofStr("status", verifyStatusName(Out.Status)));
    Span.arg(TraceArg::ofStr("diag", diagKindName(Out.Kind)));
    Span.arg(TraceArg::ofInt("conflicts",
                             static_cast<int64_t>(Out.SolverConflicts)));
    Span.arg(TraceArg::ofInt("fuel", static_cast<int64_t>(Out.FuelSpent)));
    Span.arg(TraceArg::ofBool("falsified", Out.FoundByFalsification));
    Span.arg(TraceArg::ofBool("bounded_only", Out.BoundedOnly));
  }

  // The ad-hoc aggregates previously scattered over TrainLogEntry /
  // PipelineArtifacts now also land in the process-wide registry.
  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Queries = M.counter("verify.queries");
  static Histogram &Conflicts =
      M.histogram("verify.conflicts", workUnitBounds());
  static Histogram &FuelSpent = M.histogram("verify.fuel", workUnitBounds());
  Queries.inc();
  Conflicts.observe(static_cast<double>(Out.SolverConflicts));
  FuelSpent.observe(static_cast<double>(Out.FuelSpent));
  M.counter(std::string("verify.verdict.") + verifyStatusName(Out.Status))
      .inc();
  M.counter(std::string("verify.diag.") + diagKindName(Out.Kind)).inc();
  if (Out.FoundByFalsification)
    M.counter("verify.falsify_wins").inc();

  return Out;
}

} // namespace veriopt
