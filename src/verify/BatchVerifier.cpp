//===- BatchVerifier.cpp - Batched group verification -------------------------//

#include "verify/BatchVerifier.h"

#include "trace/Metrics.h"
#include "trace/Trace.h"
#include "verify/RefinementQuery.h"

#include <mutex>
#include <unordered_map>

namespace veriopt {

std::vector<VerifyResult>
BatchVerifier::verifyGroup(const std::string &SrcText, const Function &Src,
                           const std::vector<std::string> &Texts,
                           GroupStats *Stats) const {
  TraceSpan Span("batch.verify");

  // Canonical dedupe: GRPO's small action space makes byte- or
  // renaming-identical candidates common within a group; they share every
  // per-tier cache key, so one ladder serves all of them.
  std::vector<size_t> UniqueOf(Texts.size());
  std::vector<size_t> UniqueIdx; // positions of first occurrences
  {
    std::unordered_map<std::string, size_t> Seen;
    const VerifyOptions Tier0 = [&] {
      RobustVerifier RV(Opts.Robust);
      return RV.tierOptions(0);
    }();
    for (size_t I = 0; I < Texts.size(); ++I) {
      std::string Key = VerifyCache::makeKey(SrcText, Texts[I], Tier0);
      auto [It, Inserted] = Seen.emplace(std::move(Key), UniqueIdx.size());
      if (Inserted)
        UniqueIdx.push_back(I);
      UniqueOf[I] = It->second;
    }
  }

  // The shared source half is built on first need: a group whose every
  // rung is already cached never pays for it.
  std::unique_ptr<SourceEncoding> SC;
  std::once_flag SCOnce;
  auto sharedEncoding = [&]() -> SourceEncoding * {
    std::call_once(SCOnce, [&] {
      SC = buildSourceEncoding(Src, [&] {
        RobustVerifier RV(Opts.Robust);
        return RV.tierOptions(0);
      }());
    });
    return SC.get();
  };

  const unsigned MaxTiers = Opts.Robust.MaxTiers ? Opts.Robust.MaxTiers : 1;
  std::vector<VerifyResult> Finals(UniqueIdx.size());
  std::vector<unsigned> Hits(UniqueIdx.size(), 0), Comps(UniqueIdx.size(), 0);

  // One task per unique candidate: its full ladder runs on one thread, so
  // per-candidate trace spans stay contiguous. Mirrors
  // RobustVerifier::verify rung for rung — same fault sites, same budget
  // tiers, same early exit — but leaves the verify.tier instants and
  // verify.retry.* metrics to the scoring pass, which replays this ladder
  // over the seeded cache entries and reports them once.
  auto RunOne = [&](size_t U) {
    const std::string &TgtText = Texts[UniqueIdx[U]];
    const std::string FaultKey = SrcText + '\x1f' + TgtText;
    RobustVerifier Ladder(Opts.Robust);

    uint64_t TotalConflicts = 0, TotalFuel = 0;
    VerifyResult Final;
    for (unsigned Tier = 0; Tier < MaxTiers; ++Tier) {
      VerifyResult R;
      if (Tier == 0 && Faults &&
          Faults->shouldInject(FaultSite::OracleBudget, FaultKey)) {
        // Mirror of RobustVerifier's injected tier-0 exhaustion. Never
        // cached there either (the injection fires before its cache), so
        // the scoring pass re-injects identically.
        R.Status = VerifyStatus::Inconclusive;
        R.Kind = DiagKind::ResourceExhausted;
        R.Diagnostic = "Inconclusive: injected oracle budget exhaustion\n";
      } else {
        const VerifyOptions TierOpts = Ladder.tierOptions(Tier);
        std::string Key;
        bool Served = false;
        if (Cache) {
          Key = VerifyCache::makeKey(SrcText, TgtText, TierOpts);
          Served = Cache->peek(Key, R);
        }
        if (Served) {
          ++Hits[U];
        } else {
          // Pass the provider, not the encoding: a candidate the guard
          // chain rejects (parse/size/structure) must not trigger the
          // shared source build.
          R = verifyCandidateTextOn(sharedEncoding, Src, TgtText, TierOpts);
          ++Comps[U];
          if (Cache)
            Cache->seed(Key, R);
        }
      }
      TotalConflicts += R.SolverConflicts;
      TotalFuel += R.FuelSpent;
      Final = std::move(R);
      Final.RetryTier = Tier;
      if (!RobustVerifier::retryable(Final))
        break;
    }

    // Mirror of the VerdictFlip site (applied after the ladder, outside
    // the cache, exactly as RobustVerifier does).
    if (Faults && (Final.Status == VerifyStatus::Equivalent ||
                   Final.Status == VerifyStatus::NotEquivalent) &&
        Faults->shouldInject(FaultSite::VerdictFlip, FaultKey)) {
      if (Final.Status == VerifyStatus::Equivalent) {
        Final.Status = VerifyStatus::NotEquivalent;
        Final.Kind = DiagKind::ValueMismatch;
        Final.Diagnostic += "(injected verdict flip)\n";
      } else {
        Final.Status = VerifyStatus::Equivalent;
        Final.Kind = DiagKind::None;
        Final.Counterexample.clear();
        Final.Diagnostic += "(injected verdict flip)\n";
      }
    }

    Final.SolverConflicts = TotalConflicts;
    Final.FuelSpent = TotalFuel;
    Finals[U] = std::move(Final);
  };

  if (Opts.Pool && Opts.Threads > 1)
    Opts.Pool->parallelFor(UniqueIdx.size(), RunOne);
  else
    for (size_t U = 0; U < UniqueIdx.size(); ++U)
      RunOne(U);

  GroupStats GS;
  GS.Candidates = static_cast<unsigned>(Texts.size());
  GS.Unique = static_cast<unsigned>(UniqueIdx.size());
  for (size_t U = 0; U < UniqueIdx.size(); ++U) {
    GS.CacheHits += Hits[U];
    GS.Computed += Comps[U];
  }
  if (Stats)
    *Stats = GS;

  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Groups = M.counter("batch.groups");
  static Counter &Cands = M.counter("batch.candidates");
  static Counter &Uniq = M.counter("batch.unique");
  static Counter &CacheHits = M.counter("batch.cache_hits");
  static Counter &Computed = M.counter("batch.computed");
  Groups.inc();
  Cands.inc(GS.Candidates);
  Uniq.inc(GS.Unique);
  CacheHits.inc(GS.CacheHits);
  Computed.inc(GS.Computed);

  if (Span.active()) {
    Span.arg(TraceArg::ofInt("candidates", GS.Candidates));
    Span.arg(TraceArg::ofInt("unique", GS.Unique));
    Span.arg(TraceArg::ofInt("cached", GS.CacheHits));
    Span.arg(TraceArg::ofInt("computed", GS.Computed));
  }

  std::vector<VerifyResult> Out(Texts.size());
  for (size_t I = 0; I < Texts.size(); ++I)
    Out[I] = Finals[UniqueOf[I]];
  return Out;
}

VerifyResult BatchVerifier::verifyOne(const std::string &SrcText,
                                      const Function &Src,
                                      const std::string &Text) const {
  return verifyGroup(SrcText, Src, {Text}).front();
}

} // namespace veriopt
