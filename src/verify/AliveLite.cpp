//===- AliveLite.cpp - Bounded translation validation -------------------------//

#include "verify/AliveLite.h"

#include "verify/RefinementQuery.h"

namespace veriopt {

const char *diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::None:
    return "none";
  case DiagKind::ParseError:
    return "parse-error";
  case DiagKind::StructureError:
    return "structure-error";
  case DiagKind::SignatureMismatch:
    return "signature-mismatch";
  case DiagKind::ValueMismatch:
    return "value-mismatch";
  case DiagKind::PoisonMismatch:
    return "poison-mismatch";
  case DiagKind::UBIntroduced:
    return "ub-introduced";
  case DiagKind::CallMismatch:
    return "call-mismatch";
  case DiagKind::SolverTimeout:
    return "solver-timeout";
  case DiagKind::Unsupported:
    return "unsupported";
  case DiagKind::LoopBound:
    return "loop-bound";
  case DiagKind::ResourceExhausted:
    return "resource-exhausted";
  }
  return "unknown";
}

const char *verifyStatusName(VerifyStatus S) {
  switch (S) {
  case VerifyStatus::Equivalent:
    return "equivalent";
  case VerifyStatus::NotEquivalent:
    return "not-equivalent";
  case VerifyStatus::SyntaxError:
    return "syntax-error";
  case VerifyStatus::Inconclusive:
    return "inconclusive";
  }
  return "unknown";
}

/// The implementation lives in RefinementQuery.cpp: both public entry
/// points are thin wrappers that build a fresh, exclusively-owned source
/// encoding per call. BatchVerifier reuses the same machinery with one
/// shared encoding per group; the results are bit-identical by
/// construction (see RefinementQuery.h).

VerifyResult verifyRefinement(const Function &Src, const Function &Tgt,
                              const VerifyOptions &Opts) {
  auto SC = buildSourceEncoding(Src, Opts);
  return verifyAgainstEncoding(*SC, Tgt, Opts, /*Shared=*/false);
}

VerifyResult verifyCandidateText(const Function &Src,
                                 const std::string &TgtText,
                                 const VerifyOptions &Opts) {
  return verifyCandidateTextOn(nullptr, Src, TgtText, Opts);
}

} // namespace veriopt
