//===- AliveLite.cpp - Bounded translation validation -------------------------//

#include "verify/AliveLite.h"

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "smt/Solver.h"
#include "support/RNG.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"
#include "verify/Encoder.h"

#include <map>
#include <sstream>

namespace veriopt {

const char *diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::None:
    return "none";
  case DiagKind::ParseError:
    return "parse-error";
  case DiagKind::StructureError:
    return "structure-error";
  case DiagKind::SignatureMismatch:
    return "signature-mismatch";
  case DiagKind::ValueMismatch:
    return "value-mismatch";
  case DiagKind::PoisonMismatch:
    return "poison-mismatch";
  case DiagKind::UBIntroduced:
    return "ub-introduced";
  case DiagKind::CallMismatch:
    return "call-mismatch";
  case DiagKind::SolverTimeout:
    return "solver-timeout";
  case DiagKind::Unsupported:
    return "unsupported";
  case DiagKind::LoopBound:
    return "loop-bound";
  case DiagKind::ResourceExhausted:
    return "resource-exhausted";
  }
  return "unknown";
}

const char *verifyStatusName(VerifyStatus S) {
  switch (S) {
  case VerifyStatus::Equivalent:
    return "equivalent";
  case VerifyStatus::NotEquivalent:
    return "not-equivalent";
  case VerifyStatus::SyntaxError:
    return "syntax-error";
  case VerifyStatus::Inconclusive:
    return "inconclusive";
  }
  return "unknown";
}

namespace {

std::string header(const Function &Src) {
  std::ostringstream OS;
  OS << "----------------------------------------\n"
     << "define " << Src.getReturnType()->getName() << " @" << Src.getName()
     << "\n";
  return OS.str();
}

std::string renderBindings(const std::vector<CexBinding> &Bs) {
  std::ostringstream OS;
  OS << "\nExample:\n";
  for (const CexBinding &B : Bs)
    OS << B.Name << " = " << B.Value.toString() << "\n";
  return OS.str();
}

/// Argument names as the diagnostics print them: "i32 %x".
std::string argLabel(const Function &F, unsigned I) {
  std::string Name = F.getArg(I)->hasName()
                         ? "%" + F.getArg(I)->getName()
                         : "%" + std::to_string(I);
  return F.getParamType(I)->getName() + " " + Name;
}

/// Sequence-compare two interpreter call logs (per-callee order and args).
bool callLogsMatch(const std::vector<CallEvent> &A,
                   const std::vector<CallEvent> &B) {
  if (A.size() != B.size())
    return false;
  std::map<std::string, std::vector<const CallEvent *>> ByCalleeA, ByCalleeB;
  for (const auto &E : A)
    ByCalleeA[E.Callee].push_back(&E);
  for (const auto &E : B)
    ByCalleeB[E.Callee].push_back(&E);
  if (ByCalleeA.size() != ByCalleeB.size())
    return false;
  for (auto &[Name, ListA] : ByCalleeA) {
    auto It = ByCalleeB.find(Name);
    if (It == ByCalleeB.end() || It->second.size() != ListA.size())
      return false;
    for (size_t I = 0; I < ListA.size(); ++I)
      if (ListA[I]->Args != It->second[I]->Args)
        return false;
  }
  return true;
}

/// Random + adversarial inputs for the falsification pre-pass. The first
/// six sweeps are corner sweeps with a *per-argument* corner index
/// (staggered by argument position, so mixed patterns like (0, 1) or
/// (INT_MAX, all-ones) get tried, not just all-same-corner tuples); every
/// later sweep is fully random.
std::vector<APInt64> sampleArgs(const Function &F, RNG &R, unsigned Trial) {
  std::vector<APInt64> Args;
  for (unsigned I = 0; I < F.getNumParams(); ++I) {
    unsigned W = F.getParamType(I)->getBitWidth();
    if (Trial >= 6) {
      Args.push_back(APInt64(W, R.next()));
      continue;
    }
    switch ((Trial + I) % 6) {
    case 0:
      Args.push_back(APInt64::zero(W));
      break;
    case 1:
      Args.push_back(APInt64::one(W));
      break;
    case 2:
      Args.push_back(APInt64::allOnes(W));
      break;
    case 3:
      Args.push_back(APInt64::signedMin(W));
      break;
    case 4:
      Args.push_back(APInt64::signedMax(W));
      break;
    default:
      Args.push_back(APInt64(W, R.next()));
      break;
    }
  }
  return Args;
}

/// Try to refute equivalence with concrete executions before any SMT work.
bool falsify(const Function &Src, const Function &Tgt,
             const VerifyOptions &Opts, Fuel &F, VerifyResult &Out) {
  for (unsigned I = 0; I < Src.getNumParams(); ++I)
    if (!Src.getParamType(I)->isInteger())
      return false;
  InterpOptions IOpts;
  IOpts.FuelTok = &F;
  RNG R(0xA11CE + Src.getNumParams());
  for (unsigned Trial = 0; Trial < Opts.FalsifyTrials; ++Trial) {
    if (F.exhausted())
      return false;
    std::vector<APInt64> Args = sampleArgs(Src, R, Trial);
    ExecResult SR = interpret(Src, Args, IOpts);
    if (SR.St != ExecResult::Ok || SR.RetPoison)
      continue; // source undefined/poison: target is unconstrained
    ExecResult TR = interpret(Tgt, Args, IOpts);
    if (TR.St == ExecResult::Timeout || TR.St == ExecResult::Unsupported)
      continue;

    DiagKind Kind = DiagKind::None;
    std::string Detail;
    if (TR.St == ExecResult::UndefinedBehavior) {
      Kind = DiagKind::UBIntroduced;
      Detail = "Target has undefined behavior where source is defined (" +
               TR.Reason + ")";
    } else if (!callLogsMatch(SR.Calls, TR.Calls)) {
      Kind = DiagKind::CallMismatch;
      Detail = "Mismatch in external calls";
    } else if (TR.RetPoison) {
      Kind = DiagKind::PoisonMismatch;
      Detail = "Target returns poison where source is well-defined";
    } else if (!SR.IsVoid && SR.RetVal != TR.RetVal) {
      Kind = DiagKind::ValueMismatch;
      Detail = "Value mismatch";
    }
    if (Kind == DiagKind::None)
      continue;

    Out.Status = VerifyStatus::NotEquivalent;
    Out.Kind = Kind;
    Out.FoundByFalsification = true;
    for (unsigned I = 0; I < Src.getNumParams(); ++I)
      Out.Counterexample.push_back({argLabel(Src, I), Args[I]});
    std::ostringstream OS;
    OS << header(Src) << "Transformation doesn't verify!\nERROR: " << Detail
       << "\n"
       << renderBindings(Out.Counterexample);
    if (Kind == DiagKind::ValueMismatch) {
      OS << "Source value: " << SR.RetVal.toString() << "\n"
         << "Target value: " << TR.RetVal.toString() << "\n";
    }
    Out.Diagnostic = OS.str();
    return true;
  }
  return false;
}

VerifyResult exhaustedResult(const Function &Src) {
  VerifyResult Out;
  Out.Status = VerifyStatus::Inconclusive;
  Out.Kind = DiagKind::ResourceExhausted;
  Out.Diagnostic =
      header(Src) + "Inconclusive: verification fuel budget exhausted\n";
  return Out;
}

VerifyResult verifyRefinementImpl(const Function &Src, const Function &Tgt,
                                  const VerifyOptions &Opts, Fuel &F) {
  VerifyResult Out;

  // Signatures must match exactly.
  bool SigOk = Src.getReturnType() == Tgt.getReturnType() &&
               Src.getNumParams() == Tgt.getNumParams();
  if (SigOk)
    for (unsigned I = 0; I < Src.getNumParams(); ++I)
      SigOk = SigOk && Src.getParamType(I) == Tgt.getParamType(I);
  if (!SigOk) {
    Out.Status = VerifyStatus::NotEquivalent;
    Out.Kind = DiagKind::SignatureMismatch;
    Out.Diagnostic = header(Src) +
                     "Transformation doesn't verify!\n"
                     "ERROR: Source and target signatures differ\n";
    return Out;
  }

  // Cheap refutation first (ablation: micro_components measures the win).
  if (Opts.FalsifyTrials > 0) {
    TRACE_SPAN("verify.falsify");
    if (falsify(Src, Tgt, Opts, F, Out))
      return Out;
  }
  if (F.exhausted())
    return exhaustedResult(Src);

  // Symbolic encoding over a shared context / argument space / world.
  BVContext Ctx;
  ExternalWorld World;
  std::vector<const BVExpr *> ArgVars;
  for (unsigned I = 0; I < Src.getNumParams(); ++I) {
    if (!Src.getParamType(I)->isInteger()) {
      Out.Status = VerifyStatus::Inconclusive;
      Out.Kind = DiagKind::Unsupported;
      Out.Diagnostic = "Inconclusive: pointer-typed parameters are outside "
                       "the symbolic model\n";
      return Out;
    }
    ArgVars.push_back(
        Ctx.var(Src.getParamType(I)->getBitWidth(), argLabel(Src, I)));
  }

  EncodeLimits Limits;
  Limits.MaxPaths = Opts.MaxPaths;
  Limits.MaxBlockVisitsPerPath = Opts.MaxBlockVisitsPerPath;
  Limits.MaxStepsPerPath = Opts.MaxStepsPerPath;
  Limits.FuelTok = &F;

  FnEncoding SE, TE;
  {
    TRACE_SPAN("verify.encode");
    SE = encodeFunction(Src, Ctx, ArgVars, World, Limits);
    TE = encodeFunction(Tgt, Ctx, ArgVars, World, Limits);
  }
  if (SE.FuelOut || TE.FuelOut)
    return exhaustedResult(Src);
  if (SE.Unsupported || TE.Unsupported) {
    Out.Status = VerifyStatus::Inconclusive;
    Out.Kind = DiagKind::Unsupported;
    Out.Diagnostic = "Inconclusive: " +
                     (SE.Unsupported ? SE.UnsupportedWhy : TE.UnsupportedWhy) +
                     "\n";
    return Out;
  }

  // No execution completed within the bound (e.g. the candidate loops
  // forever): nothing can be claimed, even in bounded mode.
  if (SE.Paths.empty() || TE.Paths.empty()) {
    Out.Status = VerifyStatus::Inconclusive;
    Out.Kind = DiagKind::LoopBound;
    Out.Diagnostic =
        "Inconclusive: no execution path completes within the unroll "
        "bound\n";
    return Out;
  }

  bool Truncated = !SE.Truncated->isFalse() || !TE.Truncated->isFalse();
  if (Truncated && Opts.StrictLoops) {
    Out.Status = VerifyStatus::Inconclusive;
    Out.Kind = DiagKind::LoopBound;
    Out.Diagnostic = "Inconclusive: loop unroll bound reached\n";
    return Out;
  }

  // Assumption region: inputs where both sides stayed within the unroll
  // bound (bounded translation validation, as in Alive2).
  const BVExpr *InBound =
      Ctx.and1(Ctx.not1(SE.Truncated), Ctx.not1(TE.Truncated));

  // Call-trace matching per (callee, occurrence).
  const BVExpr *CallMismatch = Ctx.falseVal();
  {
    std::map<std::pair<std::string, unsigned>,
             std::pair<std::vector<const CallRecord *>,
                       std::vector<const CallRecord *>>>
        ByKey;
    for (const CallRecord &Rec : SE.Calls)
      ByKey[{Rec.Callee, Rec.Index}].first.push_back(&Rec);
    for (const CallRecord &Rec : TE.Calls)
      ByKey[{Rec.Callee, Rec.Index}].second.push_back(&Rec);
    for (auto &[Key, Lists] : ByKey) {
      const BVExpr *SrcExec = Ctx.falseVal();
      for (const CallRecord *Rec : Lists.first)
        SrcExec = Ctx.or1(SrcExec, Rec->Guard);
      const BVExpr *TgtExec = Ctx.falseVal();
      for (const CallRecord *Rec : Lists.second)
        TgtExec = Ctx.or1(TgtExec, Rec->Guard);
      CallMismatch = Ctx.or1(CallMismatch, Ctx.ne(SrcExec, TgtExec));
      // Where both execute, arguments must agree.
      for (const CallRecord *SRec : Lists.first)
        for (const CallRecord *TRec : Lists.second) {
          const BVExpr *Both = Ctx.and1(SRec->Guard, TRec->Guard);
          if (Both->isFalse())
            continue;
          const BVExpr *ArgsDiffer = Ctx.falseVal();
          if (SRec->Args.size() != TRec->Args.size()) {
            ArgsDiffer = Ctx.trueVal();
          } else {
            for (size_t I = 0; I < SRec->Args.size(); ++I)
              ArgsDiffer = Ctx.or1(
                  ArgsDiffer, Ctx.ne(SRec->Args[I], TRec->Args[I]));
          }
          CallMismatch = Ctx.or1(CallMismatch, Ctx.and1(Both, ArgsDiffer));
        }
    }
  }

  // Refinement violation condition.
  const BVExpr *SrcDefined = Ctx.not1(SE.UB);
  const BVExpr *Violation = TE.UB;
  Violation = Ctx.or1(Violation, CallMismatch);
  const BVExpr *ValueViol = Ctx.falseVal();
  const BVExpr *PoisonViol = Ctx.falseVal();
  if (!Src.getReturnType()->isVoid()) {
    const BVExpr *RetS = SE.returnTerm(Ctx);
    const BVExpr *RetT = TE.returnTerm(Ctx);
    const BVExpr *PoisS = SE.returnPoison(Ctx);
    const BVExpr *PoisT = TE.returnPoison(Ctx);
    assert(RetS && RetT && "non-void function without return paths");
    // When the source's return is non-poison, the target must return the
    // same non-poison value; a poison source return refines to anything.
    PoisonViol = Ctx.and1(Ctx.not1(PoisS), PoisT);
    ValueViol = Ctx.and1(Ctx.not1(PoisS),
                         Ctx.and1(Ctx.not1(PoisT), Ctx.ne(RetS, RetT)));
    Violation = Ctx.or1(Violation, Ctx.or1(PoisonViol, ValueViol));
  }
  const BVExpr *Cex = Ctx.and1(InBound, Ctx.and1(SrcDefined, Violation));

  // Extract a model over the arguments AND the external world so the
  // counterexample classification/rendering evaluates under the same
  // assignment the SAT solver found.
  std::vector<const BVExpr *> ModelTerms = ArgVars;
  for (const BVExpr *WV : World.vars())
    ModelTerms.push_back(WV);

  SmtCheck Res;
  {
    TraceSpan SatSpan("verify.sat");
    Res = checkSat(Ctx, Cex, ModelTerms, Opts.SolverConflictBudget, &F);
    SatSpan.arg(TraceArg::ofStr("result", Res.St == SmtCheck::Sat ? "sat"
                                          : Res.St == SmtCheck::Unsat
                                              ? "unsat"
                                              : "unknown"));
    SatSpan.arg(TraceArg::ofInt("conflicts",
                                static_cast<int64_t>(Res.Conflicts)));
  }
  Out.SolverConflicts = Res.Conflicts;

  if (Res.St == SmtCheck::Unknown) {
    Out.Status = VerifyStatus::Inconclusive;
    if (F.exhausted()) {
      Out.Kind = DiagKind::ResourceExhausted;
      Out.Diagnostic =
          header(Src) + "Inconclusive: verification fuel budget exhausted\n";
    } else {
      Out.Kind = DiagKind::SolverTimeout;
      Out.Diagnostic = "Inconclusive: SMT solver budget exhausted\n";
    }
    return Out;
  }

  if (Res.St == SmtCheck::Unsat) {
    Out.Status = VerifyStatus::Equivalent;
    Out.Kind = DiagKind::None;
    Out.BoundedOnly = Truncated;
    std::ostringstream OS;
    OS << header(Src) << "Transformation seems to be correct!";
    if (Truncated)
      OS << " (within unroll bound " << Opts.MaxBlockVisitsPerPath << ")";
    OS << "\n";
    Out.Diagnostic = OS.str();
    return Out;
  }

  // SAT: counterexample. Classify by evaluating the sub-conditions.
  Out.Status = VerifyStatus::NotEquivalent;
  auto evalTrue = [&](const BVExpr *E) {
    return Ctx.evaluate(E, Res.Model).isOne();
  };
  if (evalTrue(TE.UB))
    Out.Kind = DiagKind::UBIntroduced;
  else if (evalTrue(CallMismatch))
    Out.Kind = DiagKind::CallMismatch;
  else if (evalTrue(PoisonViol))
    Out.Kind = DiagKind::PoisonMismatch;
  else
    Out.Kind = DiagKind::ValueMismatch;

  for (unsigned I = 0; I < Src.getNumParams(); ++I) {
    APInt64 V = Res.Model.count(ArgVars[I]->VarId)
                    ? Res.Model[ArgVars[I]->VarId]
                    : APInt64::zero(ArgVars[I]->Width);
    Out.Counterexample.push_back({argLabel(Src, I), V});
  }

  std::ostringstream OS;
  OS << header(Src) << "Transformation doesn't verify!\nERROR: ";
  switch (Out.Kind) {
  case DiagKind::UBIntroduced:
    OS << "Target is more poisonous/undefined than source";
    break;
  case DiagKind::CallMismatch:
    OS << "Mismatch in external calls";
    break;
  case DiagKind::PoisonMismatch:
    OS << "Target returns poison where source is well-defined";
    break;
  default:
    OS << "Value mismatch";
    break;
  }
  OS << "\n" << renderBindings(Out.Counterexample);
  if (Out.Kind == DiagKind::ValueMismatch &&
      !Src.getReturnType()->isVoid()) {
    OS << "Source value: "
       << Ctx.evaluate(SE.returnTerm(Ctx), Res.Model).toString() << "\n"
       << "Target value: "
       << Ctx.evaluate(TE.returnTerm(Ctx), Res.Model).toString() << "\n";
  }
  Out.Diagnostic = OS.str();
  return Out;
}

} // namespace

VerifyResult verifyRefinement(const Function &Src, const Function &Tgt,
                              const VerifyOptions &Opts) {
  // One fuel token per verification: a deterministic total-work bound that
  // is independent of thread count and wall clock, so identical queries
  // yield bit-identical results everywhere.
  Fuel F(Opts.FuelBudget);
  VerifyResult Out = verifyRefinementImpl(Src, Tgt, Opts, F);
  Out.FuelSpent = F.spent();
  return Out;
}

static VerifyResult verifyCandidateTextImpl(const Function &Src,
                                            const std::string &TgtText,
                                            const VerifyOptions &Opts) {
  VerifyResult Out;
  // Adversarial-emission guard: refuse pathologically large candidates
  // before paying any parse cost.
  if (Opts.MaxCandidateBytes > 0 && TgtText.size() > Opts.MaxCandidateBytes) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic = header(Src) + "ERROR: Candidate exceeds maximum size (" +
                     std::to_string(TgtText.size()) + " > " +
                     std::to_string(Opts.MaxCandidateBytes) + " bytes)\n";
    return Out;
  }
  auto M = parseModule(TgtText);
  if (!M) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic = header(Src) + "ERROR: Could not parse transformed IR (" +
                     M.error().render() + ")\n";
    return Out;
  }
  Function *Tgt = M.value()->getMainFunction();
  if (!Tgt) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::ParseError;
    Out.Diagnostic =
        header(Src) + "ERROR: Transformed IR contains no function\n";
    return Out;
  }
  if (Opts.MaxCandidateInsts > 0 &&
      Tgt->instructionCount() > Opts.MaxCandidateInsts) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::StructureError;
    Out.Diagnostic = header(Src) +
                     "ERROR: Candidate exceeds maximum function size (" +
                     std::to_string(Tgt->instructionCount()) + " > " +
                     std::to_string(Opts.MaxCandidateInsts) +
                     " instructions)\n";
    return Out;
  }
  std::string Err;
  if (!isWellFormed(*Tgt, &Err)) {
    Out.Status = VerifyStatus::SyntaxError;
    Out.Kind = DiagKind::StructureError;
    Out.Diagnostic =
        header(Src) + "ERROR: Transformed IR is ill-formed (" + Err + ")\n";
    return Out;
  }
  return verifyRefinement(Src, *Tgt, Opts);
}

VerifyResult verifyCandidateText(const Function &Src,
                                 const std::string &TgtText,
                                 const VerifyOptions &Opts) {
  TraceSpan Span("verify.candidate");
  VerifyResult Out = verifyCandidateTextImpl(Src, TgtText, Opts);
  if (Span.active()) {
    Span.arg(TraceArg::ofStr("status", verifyStatusName(Out.Status)));
    Span.arg(TraceArg::ofStr("diag", diagKindName(Out.Kind)));
    Span.arg(TraceArg::ofInt("conflicts",
                             static_cast<int64_t>(Out.SolverConflicts)));
    Span.arg(TraceArg::ofInt("fuel", static_cast<int64_t>(Out.FuelSpent)));
    Span.arg(TraceArg::ofBool("falsified", Out.FoundByFalsification));
    Span.arg(TraceArg::ofBool("bounded_only", Out.BoundedOnly));
  }

  // The ad-hoc aggregates previously scattered over TrainLogEntry /
  // PipelineArtifacts now also land in the process-wide registry.
  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Queries = M.counter("verify.queries");
  static Histogram &Conflicts =
      M.histogram("verify.conflicts", workUnitBounds());
  static Histogram &FuelSpent = M.histogram("verify.fuel", workUnitBounds());
  Queries.inc();
  Conflicts.observe(static_cast<double>(Out.SolverConflicts));
  FuelSpent.observe(static_cast<double>(Out.FuelSpent));
  M.counter(std::string("verify.verdict.") + verifyStatusName(Out.Status))
      .inc();
  M.counter(std::string("verify.diag.") + diagKindName(Out.Kind)).inc();
  if (Out.FoundByFalsification)
    M.counter("verify.falsify_wins").inc();

  return Out;
}

} // namespace veriopt
