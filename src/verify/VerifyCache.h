//===- VerifyCache.h - Memoized candidate verification -----------*- C++ -*-=//
//
// A thread-safe LRU memo in front of verifyCandidateText for the GRPO
// rollout-scoring hot path. GRPO's small action space makes many rollouts
// in a group byte-identical (and the Copy action exactly reproduces the
// prompt), so the same (source, candidate) pair is verified over and over;
// one symbolic-encode + CDCL call can stand in for all of them.
//
// Keys are the source text plus the *canonically re-printed* candidate
// (parse + print), so whitespace or value-numbering variants of the same IR
// share an entry; unparseable candidates key on their raw text. The full
// VerifyOptions budget is part of the key: results under different budgets
// are never conflated, and a cached result is bit-identical to what a fresh
// verifyCandidateText call would return (verification is deterministic).
//
// Concurrent lookups of the same key single-flight: the first caller
// computes, the rest block on its result instead of burning duplicate SAT
// time — exactly the shape of a GRPO group scored in parallel.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_VERIFYCACHE_H
#define VERIOPT_VERIFY_VERIFYCACHE_H

#include "support/FaultInjector.h"
#include "verify/AliveLite.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace veriopt {

/// A durable tier under the in-memory memo (the persistent VerdictStore in
/// src/store/ is the one implementation). The cache consults it on a memo
/// miss (read-through) and reports freshly computed verdicts back to it
/// (write-behind). Implementations must be thread-safe; they are never
/// called while the cache's own mutex would create a lock cycle (the tier
/// must not call back into the cache).
class VerdictBackingTier {
public:
  virtual ~VerdictBackingTier() = default;
  /// Fetch the persisted verdict for \p Key. Returns false when absent.
  virtual bool lookup(const std::string &Key, VerifyResult &Out) = 0;
  /// Persist \p R for \p Key (the tier applies its own eligibility rules).
  virtual void put(const std::string &Key, const VerifyResult &R) = 0;
};

class VerifyCache {
public:
  /// \p Capacity entries before LRU eviction. 0 means "unbounded".
  explicit VerifyCache(size_t Capacity = 4096) : Capacity(Capacity) {}

  /// Cached front door mirroring verifyCandidateText(Src, TgtText, Opts).
  /// \p SrcText must be the printed form of \p Src (Sample::SrcText); it is
  /// the cheap, stable half of the key.
  VerifyResult verify(const std::string &SrcText, const Function &Src,
                      const std::string &TgtText, const VerifyOptions &Opts);

  /// The cache key for a query: every budget knob, the source text, and the
  /// canonically re-printed candidate. Public so the batch verifier can
  /// pre-compute group keys (and dedupe canonical-equal candidates) without
  /// triggering lookups.
  static std::string makeKey(const std::string &SrcText,
                             const std::string &TgtText,
                             const VerifyOptions &Opts);

  /// Silent lookup for the batch pre-verification pass: no hit/miss
  /// accounting, no LRU touch, no single-flight join. Honors the CacheMiss
  /// fault site (an injected-missing entry stays invisible here too, so the
  /// batch recomputes exactly what the scoring pass would). Consults the
  /// backing store on a memo miss (memoizing a store hit), so a warm
  /// persistent store pre-warms batch verification too — not just the
  /// verify() front door.
  bool peek(const std::string &Key, VerifyResult &Out);

  /// Insert a computed result without counting a miss, so the batch pass
  /// can pre-warm group verdicts for the scoring pass. No-op when the key
  /// is resident or its CacheMiss fault fires; evictions count normally.
  void seed(const std::string &Key, const VerifyResult &R);

  struct Counters {
    uint64_t Hits = 0;      ///< served from the memo (incl. in-flight joins)
    uint64_t Misses = 0;    ///< paid a full verification
    uint64_t Evictions = 0; ///< LRU entries dropped at capacity
    uint64_t lookups() const { return Hits + Misses; }
    double hitRate() const {
      return lookups() ? static_cast<double>(Hits) / lookups() : 0.0;
    }
  };
  Counters counters() const;

  size_t size() const;
  void clear();

  /// Optional deterministic fault injection: when set and the CacheMiss site
  /// fires for a key, both the lookup and the store are skipped — the entry
  /// behaves as if evicted. Used by the fault-tolerance tests to prove the
  /// trainer's results do not depend on cache residency.
  ///
  /// Trust-model consequence (docs/PERSISTENCE.md): while an injector is
  /// attached, the backing store is bypassed entirely — no probes, no
  /// write-behind — so chaos runs neither warm the durable store nor read
  /// warmth the injected-miss scenario is supposed to deny.
  void setFaultInjector(FaultInjector *FI) {
    std::lock_guard<std::mutex> L(M);
    Faults = FI;
  }

  /// Attach a durable tier under the memo (null detaches). Read-through on
  /// owner misses and silent peeks, write-behind on computed and seeded
  /// verdicts; single-flight is preserved (the owning thread probes the
  /// store, joiners still wait on its result). The tier must outlive the
  /// cache or be detached first.
  void setBackingStore(VerdictBackingTier *S) {
    std::lock_guard<std::mutex> L(M);
    Store = S;
  }

private:
  /// Single-flight slot: the first thread to miss computes into it; joiners
  /// wait on ReadyCV.
  struct InFlight {
    std::mutex M;
    std::condition_variable ReadyCV;
    bool Ready = false;
    VerifyResult Result;
  };

  using LRUList = std::list<std::pair<std::string, VerifyResult>>;

  size_t Capacity;
  mutable std::mutex M;
  LRUList LRU; ///< front = most recently used
  std::unordered_map<std::string, LRUList::iterator> Index;
  std::map<std::string, std::shared_ptr<InFlight>> Pending;
  Counters Stats;
  FaultInjector *Faults = nullptr;
  VerdictBackingTier *Store = nullptr;
};

} // namespace veriopt

#endif // VERIOPT_VERIFY_VERIFYCACHE_H
