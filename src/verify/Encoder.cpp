//===- Encoder.cpp - Symbolic execution to BV terms ---------------------------//

#include "verify/Encoder.h"

#include <unordered_map>

namespace veriopt {

const BVExpr *ExternalWorld::callReturn(BVContext &Ctx,
                                        const std::string &Callee,
                                        unsigned Index, unsigned Width) {
  auto Key = std::make_pair(Callee, Index);
  auto It = Vars.find(Key);
  if (It != Vars.end()) {
    assert(It->second->Width == Width && "call return width changed");
    return It->second;
  }
  const BVExpr *V = Ctx.var(
      Width, "call:" + Callee + "#" + std::to_string(Index));
  Vars.emplace(Key, V);
  return V;
}

const BVExpr *FnEncoding::returnTerm(BVContext &Ctx) const {
  const BVExpr *Out = nullptr;
  for (const PathOutcome &P : Paths) {
    if (!P.Ret)
      return nullptr; // void function
    Out = Out ? Ctx.ite(P.Cond, P.Ret, Out) : P.Ret;
  }
  return Out;
}

const BVExpr *FnEncoding::returnPoison(BVContext &Ctx) const {
  const BVExpr *Out = nullptr;
  for (const PathOutcome &P : Paths)
    Out = Out ? Ctx.ite(P.Cond, P.RetPoison, Out) : P.RetPoison;
  return Out ? Out : Ctx.falseVal();
}

const BVExpr *FnEncoding::covered(BVContext &Ctx) const {
  const BVExpr *Out = Ctx.falseVal();
  for (const PathOutcome &P : Paths)
    Out = Ctx.or1(Out, P.Cond);
  return Out;
}

namespace {

/// A symbolic runtime value: integer (term + poison flag) or pointer
/// (allocation id + concrete byte offset). Pointer poison is folded into
/// the UB events at use sites, since pointer offsets stay concrete.
struct SymVal {
  enum Kind { Int, Ptr } K = Int;
  const BVExpr *Term = nullptr;   // Int
  const BVExpr *Poison = nullptr; // Int (width 1)
  unsigned AllocaId = 0;          // Ptr
  int64_t Offset = 0;             // Ptr

  static SymVal makeInt(const BVExpr *T, const BVExpr *P) {
    SymVal V;
    V.K = Int;
    V.Term = T;
    V.Poison = P;
    return V;
  }
  static SymVal makePtr(unsigned Id, int64_t Off) {
    SymVal V;
    V.K = Ptr;
    V.AllocaId = Id;
    V.Offset = Off;
    return V;
  }
};

/// Per-allocation symbolic memory: one 8-bit term and one poison flag per
/// byte. Zero-initialized (dialect semantics).
struct SymAllocation {
  std::vector<const BVExpr *> Bytes;
  std::vector<const BVExpr *> PoisonBytes;
};

struct PathState {
  const BVExpr *Cond;
  std::unordered_map<const Value *, SymVal> Env;
  std::vector<SymAllocation> Allocs;
  std::unordered_map<const BasicBlock *, unsigned> Visits;
  std::unordered_map<std::string, unsigned> CallCounts;
  unsigned Steps = 0;
};

class Encoder {
public:
  Encoder(const Function &F, BVContext &Ctx,
          const std::vector<const BVExpr *> &ArgVars, ExternalWorld &World,
          const EncodeLimits &Limits)
      : F(F), Ctx(Ctx), World(World), Limits(Limits) {
    Enc.UB = Ctx.falseVal();
    Enc.Truncated = Ctx.falseVal();
    PathState Init;
    Init.Cond = Ctx.trueVal();
    for (unsigned I = 0; I < F.getNumParams(); ++I) {
      if (!F.getParamType(I)->isInteger()) {
        unsupported("pointer-typed parameter");
        return;
      }
      assert(I < ArgVars.size() &&
             ArgVars[I]->Width == F.getParamType(I)->getBitWidth() &&
             "argument variable mismatch");
      Init.Env[F.getArg(I)] =
          SymVal::makeInt(ArgVars[I], Ctx.falseVal());
    }
    if (!Enc.Unsupported)
      Worklist.push_back({F.getEntryBlock(), nullptr, std::move(Init)});
  }

  FnEncoding run() {
    while (!Worklist.empty() && !Enc.Unsupported && !Enc.FuelOut) {
      Frame Fr = std::move(Worklist.back());
      Worklist.pop_back();
      execBlock(Fr.BB, Fr.Prev, std::move(Fr.State));
    }
    return std::move(Enc);
  }

private:
  struct Frame {
    const BasicBlock *BB;
    const BasicBlock *Prev;
    PathState State;
  };

  void unsupported(const std::string &Why) {
    Enc.Unsupported = true;
    Enc.UnsupportedWhy = Why;
  }

  /// Record a guarded UB event.
  void addUB(const PathState &S, const BVExpr *Event) {
    Enc.UB = Ctx.or1(Enc.UB, Ctx.and1(S.Cond, Event));
  }

  SymVal get(PathState &S, Value *V) {
    if (auto *C = dyn_cast<ConstantInt>(V))
      return SymVal::makeInt(Ctx.constant(C->getValue()), Ctx.falseVal());
    auto It = S.Env.find(V);
    assert(It != S.Env.end() && "use of unevaluated value");
    return It->second;
  }

  void execBlock(const BasicBlock *BB, const BasicBlock *Prev,
                 PathState S) {
    if (Enc.Unsupported || Enc.FuelOut)
      return;
    if (Limits.FuelTok && !Limits.FuelTok->consume(fuel::EncodeBlockVisit)) {
      Enc.FuelOut = true;
      return;
    }
    unsigned &Visits = S.Visits[BB];
    if (++Visits > Limits.MaxBlockVisitsPerPath) {
      Enc.Truncated = Ctx.or1(Enc.Truncated, S.Cond);
      return;
    }

    // Phis: parallel evaluation against the incoming edge.
    std::vector<std::pair<const Value *, SymVal>> PhiVals;
    for (PhiInst *P : BB->phis()) {
      Value *In = P->getIncomingValueFor(Prev);
      assert(In && "phi has no entry for symbolic predecessor");
      PhiVals.emplace_back(P, get(S, In));
    }
    for (auto &[P, V] : PhiVals)
      S.Env[P] = V;

    for (const auto &IPtr : *BB) {
      Instruction *I = IPtr.get();
      if (isa<PhiInst>(I))
        continue;
      if (++S.Steps > Limits.MaxStepsPerPath) {
        Enc.Truncated = Ctx.or1(Enc.Truncated, S.Cond);
        return;
      }
      if (Limits.FuelTok && !Limits.FuelTok->consume(fuel::EncodeStep)) {
        Enc.FuelOut = true;
        return;
      }
      if (!execInst(S, I))
        return; // path ended (ret / UB-terminal / branch enqueued / unsup)
    }
    assert(false && "block without terminator reached symbolic execution");
  }

  /// Returns false when the path ends here (including when successors were
  /// enqueued); true to continue within the block.
  bool execInst(PathState &S, Instruction *I) {
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      auto *C = cast<ICmpInst>(I);
      SymVal L = get(S, C->getLHS()), R = get(S, C->getRHS());
      const BVExpr *T = nullptr;
      switch (C->getPredicate()) {
      case ICmpPred::EQ:
        T = Ctx.eq(L.Term, R.Term);
        break;
      case ICmpPred::NE:
        T = Ctx.ne(L.Term, R.Term);
        break;
      case ICmpPred::UGT:
        T = Ctx.ugt(L.Term, R.Term);
        break;
      case ICmpPred::UGE:
        T = Ctx.uge(L.Term, R.Term);
        break;
      case ICmpPred::ULT:
        T = Ctx.ult(L.Term, R.Term);
        break;
      case ICmpPred::ULE:
        T = Ctx.ule(L.Term, R.Term);
        break;
      case ICmpPred::SGT:
        T = Ctx.sgt(L.Term, R.Term);
        break;
      case ICmpPred::SGE:
        T = Ctx.sge(L.Term, R.Term);
        break;
      case ICmpPred::SLT:
        T = Ctx.slt(L.Term, R.Term);
        break;
      case ICmpPred::SLE:
        T = Ctx.sle(L.Term, R.Term);
        break;
      }
      S.Env[I] = SymVal::makeInt(T, Ctx.or1(L.Poison, R.Poison));
      return true;
    }
    case Opcode::Select: {
      auto *Sel = cast<SelectInst>(I);
      SymVal C = get(S, Sel->getCondition());
      SymVal T = get(S, Sel->getTrueValue());
      SymVal E = get(S, Sel->getFalseValue());
      if (T.K != SymVal::Int || E.K != SymVal::Int) {
        unsupported("select over pointers");
        return false;
      }
      const BVExpr *Val = Ctx.ite(C.Term, T.Term, E.Term);
      // Poison: condition poison poisons the result; otherwise the chosen
      // arm's poison.
      const BVExpr *P =
          Ctx.or1(C.Poison, Ctx.ite(C.Term, T.Poison, E.Poison));
      S.Env[I] = SymVal::makeInt(Val, P);
      return true;
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc: {
      auto *Cst = cast<CastInst>(I);
      SymVal V = get(S, Cst->getSrc());
      unsigned DW = I->getType()->getBitWidth();
      const BVExpr *T = I->getOpcode() == Opcode::ZExt ? Ctx.zext(V.Term, DW)
                        : I->getOpcode() == Opcode::SExt
                            ? Ctx.sext(V.Term, DW)
                            : Ctx.trunc(V.Term, DW);
      S.Env[I] = SymVal::makeInt(T, V.Poison);
      return true;
    }
    case Opcode::Alloca: {
      auto *A = cast<AllocaInst>(I);
      SymAllocation Al;
      unsigned N = A->getAllocatedBytes();
      Al.Bytes.assign(N, Ctx.constant(8, 0));
      Al.PoisonBytes.assign(N, Ctx.falseVal());
      unsigned Id = static_cast<unsigned>(S.Allocs.size());
      S.Allocs.push_back(std::move(Al));
      S.Env[I] = SymVal::makePtr(Id, 0);
      return true;
    }
    case Opcode::GEP: {
      auto *G = cast<GEPInst>(I);
      SymVal P = get(S, G->getPointer());
      SymVal Off = get(S, G->getOffset());
      if (P.K != SymVal::Ptr) {
        unsupported("gep on a non-pointer symbolic value");
        return false;
      }
      if (!Off.Term->isConst()) {
        unsupported("symbolic pointer arithmetic");
        return false;
      }
      // A poison offset makes the pointer unusable: treat any use as UB by
      // recording the event now (the offset itself stays concrete).
      if (!Off.Poison->isFalse())
        addUB(S, Off.Poison);
      S.Env[I] =
          SymVal::makePtr(P.AllocaId, P.Offset + Off.Term->ConstVal.sext());
      return true;
    }
    case Opcode::Load: {
      auto *L = cast<LoadInst>(I);
      SymVal P = get(S, L->getPointer());
      unsigned N = L->getAccessBytes();
      if (!checkAccess(S, P, N))
        return false; // unconditional UB on this path
      SymAllocation &Al = S.Allocs[P.AllocaId];
      const BVExpr *Val = Al.Bytes[static_cast<size_t>(P.Offset)];
      const BVExpr *Poison = Al.PoisonBytes[static_cast<size_t>(P.Offset)];
      for (unsigned B = 1; B < N; ++B) {
        Val = Ctx.concat(Al.Bytes[static_cast<size_t>(P.Offset) + B], Val);
        Poison = Ctx.or1(
            Poison, Al.PoisonBytes[static_cast<size_t>(P.Offset) + B]);
      }
      // Sub-byte types (i1) occupy a full byte in memory.
      unsigned W = L->getType()->getBitWidth();
      if (W < Val->Width)
        Val = Ctx.trunc(Val, W);
      S.Env[I] = SymVal::makeInt(Val, Poison);
      return true;
    }
    case Opcode::Store: {
      auto *St = cast<StoreInst>(I);
      SymVal P = get(S, St->getPointer());
      unsigned N = St->getAccessBytes();
      if (!checkAccess(S, P, N))
        return false;
      SymVal V = get(S, St->getValueOperand());
      SymAllocation &Al = S.Allocs[P.AllocaId];
      // Sub-byte types (i1) zero-extend into their byte.
      const BVExpr *Wide =
          V.Term->Width < 8 * N ? Ctx.zext(V.Term, 8 * N) : V.Term;
      for (unsigned B = 0; B < N; ++B) {
        Al.Bytes[static_cast<size_t>(P.Offset) + B] =
            Ctx.extract(Wide, B * 8, 8);
        Al.PoisonBytes[static_cast<size_t>(P.Offset) + B] = V.Poison;
      }
      return true;
    }
    case Opcode::Br: {
      auto *B = cast<BrInst>(I);
      if (!B->isConditional()) {
        enqueue(B->getSuccessor(0), I->getParent(), std::move(S));
        return false;
      }
      SymVal C = get(S, B->getCondition());
      // Branching on poison is UB.
      if (!C.Poison->isFalse())
        addUB(S, C.Poison);
      if (static_cast<unsigned>(Enc.Paths.size()) + Worklist.size() + 2 >
          Limits.MaxPaths) {
        Enc.Truncated = Ctx.or1(Enc.Truncated, S.Cond);
        return false;
      }
      const BVExpr *TakeTrue = Ctx.and1(S.Cond, C.Term);
      const BVExpr *TakeFalse = Ctx.and1(S.Cond, Ctx.not1(C.Term));
      if (!TakeFalse->isFalse()) {
        PathState FalseState = S; // copy
        FalseState.Cond = TakeFalse;
        enqueue(B->getFalseSuccessor(), I->getParent(),
                std::move(FalseState));
      }
      if (!TakeTrue->isFalse()) {
        S.Cond = TakeTrue;
        enqueue(B->getTrueSuccessor(), I->getParent(), std::move(S));
      }
      return false;
    }
    case Opcode::Ret: {
      auto *R = cast<RetInst>(I);
      PathOutcome Out;
      Out.Cond = S.Cond;
      Out.Ret = nullptr;
      Out.RetPoison = Ctx.falseVal();
      if (R->hasReturnValue()) {
        SymVal V = get(S, R->getReturnValue());
        if (V.K != SymVal::Int) {
          unsupported("returning a pointer");
          return false;
        }
        Out.Ret = V.Term;
        Out.RetPoison = V.Poison;
      }
      Enc.Paths.push_back(Out);
      return false;
    }
    case Opcode::Call: {
      auto *C = cast<CallInst>(I);
      CallRecord Rec;
      Rec.Callee = C->getCallee()->getName();
      Rec.Guard = S.Cond;
      for (unsigned A = 0; A < C->getNumArgs(); ++A) {
        SymVal V = get(S, C->getArg(A));
        if (V.K != SymVal::Int) {
          unsupported("pointer passed to call");
          return false;
        }
        // Passing poison to a call is UB.
        if (!V.Poison->isFalse())
          addUB(S, V.Poison);
        Rec.Args.push_back(V.Term);
      }
      Rec.Index = S.CallCounts[Rec.Callee]++;
      if (!I->getType()->isVoid()) {
        const BVExpr *Rv = World.callReturn(
            Ctx, Rec.Callee, Rec.Index, I->getType()->getBitWidth());
        S.Env[I] = SymVal::makeInt(Rv, Ctx.falseVal());
      }
      Enc.Calls.push_back(std::move(Rec));
      return true;
    }
    default:
      break;
    }
    assert(I->isBinaryOp() && "unhandled opcode in encoder");
    return execBinary(S, cast<BinaryInst>(I));
  }

  /// Concrete bounds check; out-of-bounds is UB on the whole path (the
  /// offset is concrete, so conditional OOB cannot arise).
  bool checkAccess(PathState &S, const SymVal &P, unsigned N) {
    if (P.K != SymVal::Ptr || P.AllocaId >= S.Allocs.size()) {
      unsupported("memory access through a non-alloca pointer");
      return false;
    }
    const SymAllocation &Al = S.Allocs[P.AllocaId];
    if (P.Offset < 0 ||
        static_cast<uint64_t>(P.Offset) + N > Al.Bytes.size()) {
      addUB(S, Ctx.trueVal());
      return false;
    }
    return true;
  }

  bool execBinary(PathState &S, BinaryInst *I) {
    SymVal L = get(S, I->getLHS()), R = get(S, I->getRHS());
    unsigned W = I->getType()->getBitWidth();
    Opcode Op = I->getOpcode();
    const BVExpr *Zero = Ctx.constant(APInt64::zero(W));

    if (I->isDivRem()) {
      // Division on poison and the classic corner cases are immediate UB.
      const BVExpr *Event = Ctx.or1(L.Poison, R.Poison);
      Event = Ctx.or1(Event, Ctx.eq(R.Term, Zero));
      if (Op == Opcode::SDiv || Op == Opcode::SRem) {
        const BVExpr *Min = Ctx.constant(APInt64::signedMin(W));
        const BVExpr *MinusOne = Ctx.constant(APInt64::allOnes(W));
        Event = Ctx.or1(Event, Ctx.and1(Ctx.eq(L.Term, Min),
                                        Ctx.eq(R.Term, MinusOne)));
      }
      if (!Event->isFalse())
        addUB(S, Event);
      const BVExpr *T = nullptr;
      switch (Op) {
      case Opcode::UDiv:
        T = Ctx.udiv(L.Term, R.Term);
        break;
      case Opcode::SDiv:
        T = Ctx.sdiv(L.Term, R.Term);
        break;
      case Opcode::URem:
        T = Ctx.urem(L.Term, R.Term);
        break;
      default:
        T = Ctx.srem(L.Term, R.Term);
        break;
      }
      const BVExpr *P = Ctx.falseVal();
      if (I->isExact()) {
        // exact udiv/sdiv: poison when the division has a remainder.
        const BVExpr *Rem = (Op == Opcode::UDiv)
                                ? Ctx.urem(L.Term, R.Term)
                                : Ctx.srem(L.Term, R.Term);
        P = Ctx.ne(Rem, Zero);
      }
      S.Env[I] = SymVal::makeInt(T, P);
      return true;
    }

    const BVExpr *T = nullptr;
    const BVExpr *P = Ctx.or1(L.Poison, R.Poison);
    auto addOverflowPoison = [&](const BVExpr *Cond) {
      P = Ctx.or1(P, Cond);
    };

    switch (Op) {
    case Opcode::Add: {
      T = Ctx.add(L.Term, R.Term);
      if (I->hasNSW()) {
        // Signed overflow: operands same sign, result different sign.
        const BVExpr *LS = Ctx.slt(L.Term, Zero);
        const BVExpr *RS = Ctx.slt(R.Term, Zero);
        const BVExpr *TS = Ctx.slt(T, Zero);
        addOverflowPoison(
            Ctx.and1(Ctx.eq(LS, RS), Ctx.ne(LS, TS)));
      }
      if (I->hasNUW())
        addOverflowPoison(Ctx.ult(T, L.Term)); // wrapped below an operand
      break;
    }
    case Opcode::Sub: {
      T = Ctx.sub(L.Term, R.Term);
      if (I->hasNSW()) {
        const BVExpr *LS = Ctx.slt(L.Term, Zero);
        const BVExpr *RS = Ctx.slt(R.Term, Zero);
        const BVExpr *TS = Ctx.slt(T, Zero);
        addOverflowPoison(Ctx.and1(Ctx.ne(LS, RS), Ctx.ne(LS, TS)));
      }
      if (I->hasNUW())
        addOverflowPoison(Ctx.ult(L.Term, R.Term));
      break;
    }
    case Opcode::Mul: {
      T = Ctx.mul(L.Term, R.Term);
      if (I->hasNSW()) {
        if (W < 64) {
          // Check in double width: sext(result) == sext(l)*sext(r)?
          const BVExpr *Wide =
              Ctx.mul(Ctx.sext(L.Term, 2 * W > 64 ? 64 : 2 * W),
                      Ctx.sext(R.Term, 2 * W > 64 ? 64 : 2 * W));
          addOverflowPoison(
              Ctx.ne(Wide, Ctx.sext(T, 2 * W > 64 ? 64 : 2 * W)));
        } else {
          // 64-bit: overflow iff l != 0 and (t / l != r or sign corner).
          const BVExpr *NonZero = Ctx.ne(L.Term, Zero);
          const BVExpr *DivBack = Ctx.sdiv(T, L.Term);
          const BVExpr *Mismatch = Ctx.ne(DivBack, R.Term);
          const BVExpr *MinCorner =
              Ctx.and1(Ctx.eq(L.Term, Ctx.constant(APInt64::allOnes(64))),
                       Ctx.eq(T, Ctx.constant(APInt64::signedMin(64))));
          addOverflowPoison(
              Ctx.and1(NonZero, Ctx.or1(Mismatch, MinCorner)));
        }
      }
      if (I->hasNUW()) {
        if (W < 64) {
          const BVExpr *Wide =
              Ctx.mul(Ctx.zext(L.Term, 2 * W > 64 ? 64 : 2 * W),
                      Ctx.zext(R.Term, 2 * W > 64 ? 64 : 2 * W));
          addOverflowPoison(
              Ctx.ne(Wide, Ctx.zext(T, 2 * W > 64 ? 64 : 2 * W)));
        } else {
          const BVExpr *NonZero = Ctx.ne(L.Term, Zero);
          addOverflowPoison(
              Ctx.and1(NonZero, Ctx.ne(Ctx.udiv(T, L.Term), R.Term)));
        }
      }
      break;
    }
    case Opcode::Shl: {
      T = Ctx.shl(L.Term, R.Term);
      const BVExpr *Big =
          Ctx.uge(R.Term, Ctx.constant(APInt64(W, W)));
      addOverflowPoison(Big);
      if (I->hasNUW())
        addOverflowPoison(Ctx.ne(Ctx.lshr(T, R.Term), L.Term));
      if (I->hasNSW())
        addOverflowPoison(Ctx.ne(Ctx.ashr(T, R.Term), L.Term));
      break;
    }
    case Opcode::LShr: {
      T = Ctx.lshr(L.Term, R.Term);
      addOverflowPoison(Ctx.uge(R.Term, Ctx.constant(APInt64(W, W))));
      if (I->isExact())
        addOverflowPoison(Ctx.ne(Ctx.shl(T, R.Term), L.Term));
      break;
    }
    case Opcode::AShr: {
      T = Ctx.ashr(L.Term, R.Term);
      addOverflowPoison(Ctx.uge(R.Term, Ctx.constant(APInt64(W, W))));
      if (I->isExact())
        addOverflowPoison(Ctx.ne(Ctx.shl(T, R.Term), L.Term));
      break;
    }
    case Opcode::And:
      T = Ctx.bvand(L.Term, R.Term);
      break;
    case Opcode::Or:
      T = Ctx.bvor(L.Term, R.Term);
      break;
    case Opcode::Xor:
      T = Ctx.bvxor(L.Term, R.Term);
      break;
    default:
      assert(false && "not a binary opcode");
    }
    S.Env[I] = SymVal::makeInt(T, P);
    return true;
  }

  void enqueue(const BasicBlock *BB, const BasicBlock *Prev, PathState S) {
    Worklist.push_back({BB, Prev, std::move(S)});
  }

  const Function &F;
  BVContext &Ctx;
  ExternalWorld &World;
  EncodeLimits Limits;
  FnEncoding Enc;
  std::vector<Frame> Worklist;
};

} // namespace

FnEncoding encodeFunction(const Function &F, BVContext &Ctx,
                          const std::vector<const BVExpr *> &ArgVars,
                          ExternalWorld &World, const EncodeLimits &Limits) {
  Encoder E(F, Ctx, ArgVars, World, Limits);
  return E.run();
}

} // namespace veriopt
