//===- Encoder.h - Symbolic execution to BV terms (internal) -----*- C++ -*-=//
//
// Path-based symbolic executor: enumerates CFG paths up to the unroll
// bound, producing per-path return terms, a UB condition, a truncation
// condition, and the external-call trace. Shared between the refinement
// builder (AliveLite.cpp) and the encoder property tests.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_ENCODER_H
#define VERIOPT_VERIFY_ENCODER_H

#include "ir/Function.h"
#include "smt/BVExpr.h"
#include "support/Fuel.h"

#include <map>
#include <string>
#include <vector>

namespace veriopt {

/// Shared "external world": the return value of the k-th call to a given
/// callee is the same free variable in source and target, so both sides are
/// verified against every possible behaviour of the outside world.
class ExternalWorld {
public:
  const BVExpr *callReturn(BVContext &Ctx, const std::string &Callee,
                           unsigned Index, unsigned Width);

  /// All call-return variables created so far (for model extraction).
  std::vector<const BVExpr *> vars() const {
    std::vector<const BVExpr *> Out;
    for (const auto &[Key, V] : Vars)
      Out.push_back(V);
    return Out;
  }

private:
  std::map<std::pair<std::string, unsigned>, const BVExpr *> Vars;
};

/// One completed execution path.
struct PathOutcome {
  const BVExpr *Cond;      ///< path condition (width 1)
  const BVExpr *Ret;       ///< return term (null for void)
  const BVExpr *RetPoison; ///< width-1 poison flag of the return value
};

/// One external call site occurrence along some path.
struct CallRecord {
  std::string Callee;
  unsigned Index; ///< per-callee occurrence number along the path
  const BVExpr *Guard; ///< path condition under which the call happens
  std::vector<const BVExpr *> Args;
};

struct EncodeLimits {
  unsigned MaxPaths = 128;
  unsigned MaxBlockVisitsPerPath = 5;
  unsigned MaxStepsPerPath = 4096;
  /// Shared verification fuel; charged per symbolic instruction and block
  /// visit, so path enumeration is bounded globally, not just per path.
  Fuel *FuelTok = nullptr;
};

/// The symbolic summary of a function.
struct FnEncoding {
  std::vector<PathOutcome> Paths;
  const BVExpr *UB = nullptr;        ///< inputs triggering UB (width 1)
  const BVExpr *Truncated = nullptr; ///< inputs leaving the unroll bound
  std::vector<CallRecord> Calls;
  bool Unsupported = false;
  std::string UnsupportedWhy;
  /// The fuel token ran dry mid-encoding: the summary is incomplete and the
  /// verifier must report Inconclusive{ResourceExhausted}.
  bool FuelOut = false;

  /// ITE-chain of return values over the paths (null for void functions).
  const BVExpr *returnTerm(BVContext &Ctx) const;
  /// ITE-chain of return-poison flags over the paths.
  const BVExpr *returnPoison(BVContext &Ctx) const;
  /// Disjunction of all complete-path conditions.
  const BVExpr *covered(BVContext &Ctx) const;
};

/// Symbolically execute \p F. \p ArgVars supplies the shared argument
/// variables (one width-matched Var term per integer parameter).
FnEncoding encodeFunction(const Function &F, BVContext &Ctx,
                          const std::vector<const BVExpr *> &ArgVars,
                          ExternalWorld &World, const EncodeLimits &Limits);

} // namespace veriopt

#endif // VERIOPT_VERIFY_ENCODER_H
