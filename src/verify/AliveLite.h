//===- AliveLite.h - Bounded translation validation --------------*- C++ -*-=//
//
// The stand-in for Alive2 + Z3: proves (or refutes) that a transformed
// function refines the source function, over the shared dialect semantics
// (see Interpreter.h). Outcomes follow the paper's four-way taxonomy
// (§IV-C): Equivalent / NotEquivalent (semantic error) / SyntaxError /
// Inconclusive.
//
// Refinement (Alive2-style): for every input on which the source is
// defined (no UB), the target must (a) not trigger UB, (b) return a
// non-poison value equal to the source's whenever the source's return is
// non-poison, and (c) perform the same external calls with equal arguments.
//
// Like Alive2, loops are handled by *bounded* unrolling: equivalence is
// guaranteed only for executions within the unroll bound (the paper's §VI
// discusses exactly this limitation). StrictLoops mode instead reports
// Inconclusive whenever the bound was hit.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_ALIVELITE_H
#define VERIOPT_VERIFY_ALIVELITE_H

#include "ir/Function.h"
#include "support/APInt64.h"
#include "support/Fuel.h"

#include <string>
#include <vector>

namespace veriopt {

enum class VerifyStatus {
  Equivalent,    ///< formally proven (within the unroll bound)
  NotEquivalent, ///< counterexample found ("semantic error")
  SyntaxError,   ///< target failed to parse or verify as IR
  Inconclusive,  ///< solver budget / unsupported construct / loop bound
};

/// Machine-readable failure category — the label space of the model's
/// diagnosis head (§III-B: learning from diagnostic information).
enum class DiagKind {
  None,
  ParseError,        ///< target is not parseable IR
  StructureError,    ///< parsed but ill-formed (SSA/CFG violations)
  SignatureMismatch, ///< different arg/return types
  ValueMismatch,     ///< returns differ on some input
  PoisonMismatch,    ///< target returns poison where source is defined
  UBIntroduced,      ///< target triggers UB where source is defined
  CallMismatch,      ///< external calls added/removed/changed
  SolverTimeout,     ///< SAT budget exhausted
  Unsupported,       ///< construct outside the symbolic model
  LoopBound,         ///< strict mode: unroll bound reached
  ResourceExhausted, ///< deterministic fuel budget ran dry (any layer)
};

const char *diagKindName(DiagKind K);
const char *verifyStatusName(VerifyStatus S);

struct VerifyOptions {
  unsigned MaxPaths = 128;          ///< per function
  unsigned MaxBlockVisitsPerPath = 5; ///< loop unroll bound
  unsigned MaxStepsPerPath = 4096;
  uint64_t SolverConflictBudget = DefaultSolverConflictBudget;
  bool StrictLoops = false; ///< Inconclusive instead of bounded guarantee
  unsigned FalsifyTrials = 24; ///< random-input pre-pass (0 = disabled)
  /// Deterministic total-work budget for one verification, shared across
  /// falsification, encoding, and SAT (0 = unlimited). Exhaustion yields
  /// Inconclusive{ResourceExhausted}; no wall clock is involved, so results
  /// stay bit-identical at any thread count.
  uint64_t FuelBudget = DefaultVerifyFuel;
  /// Adversarial-emission guards for verifyCandidateText: candidates larger
  /// than this many bytes, or parsing to more than this many instructions,
  /// classify as SyntaxError without paying parse/verify cost.
  size_t MaxCandidateBytes = 1 << 20;
  unsigned MaxCandidateInsts = 50000;
};

/// One argument assignment in a counterexample.
struct CexBinding {
  std::string Name;
  APInt64 Value;
};

struct VerifyResult {
  VerifyStatus Status = VerifyStatus::Inconclusive;
  DiagKind Kind = DiagKind::None;
  /// Alive2-flavoured human-readable report (the text fed back into
  /// diagnostic-augmented prompts, Fig. 2).
  std::string Diagnostic;
  /// Counterexample bindings when Status == NotEquivalent.
  std::vector<CexBinding> Counterexample;
  /// True when Equivalent holds only under the loop unroll bound.
  bool BoundedOnly = false;
  /// True when the cheap falsification pre-pass (random concrete inputs)
  /// found the counterexample before any SMT work.
  bool FoundByFalsification = false;
  uint64_t SolverConflicts = 0;
  /// Fuel actually consumed by this verification (0 when unlimited and
  /// untracked); reported for telemetry and the retry ladder's tiering.
  uint64_t FuelSpent = 0;
  /// Retry-ladder tier that produced this verdict (0 = first attempt).
  /// Set by RobustVerifier; plain verifyCandidateText always reports 0.
  unsigned RetryTier = 0;

  bool equivalent() const { return Status == VerifyStatus::Equivalent; }
};

/// Verify that \p Tgt refines \p Src. Both must be well-formed; this is the
/// core IR-level entry point.
VerifyResult verifyRefinement(const Function &Src, const Function &Tgt,
                              const VerifyOptions &Opts = VerifyOptions());

/// Full front door matching the RL pipeline: \p TgtText is candidate IR
/// text (e.g. an LLM emission). Parse/verifier failures classify as
/// SyntaxError; otherwise runs verifyRefinement against \p Src.
VerifyResult verifyCandidateText(const Function &Src,
                                 const std::string &TgtText,
                                 const VerifyOptions &Opts = VerifyOptions());

} // namespace veriopt

#endif // VERIOPT_VERIFY_ALIVELITE_H
