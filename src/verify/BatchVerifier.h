//===- BatchVerifier.h - Batched group verification --------------*- C++ -*-=//
//
// Verifies a whole GRPO group — G candidate texts against one source —
// through a single shared solver context. The source function's
// falsification runs, symbolic encoding, and CNF are built once
// (SourceEncoding); each candidate pays only for its own screen, encode,
// and an assumption-guarded SAT activation on a clone of the retained
// prefix (QueryPrefix).
//
// The batch runs the same escalating-budget ladder as RobustVerifier —
// including its deterministic fault sites — and pre-warms the verification
// cache with every tier it computes, so the scoring pass replays verdicts
// from the cache and reports the same per-tier telemetry it would have
// produced by computing them itself. Verdicts, diagnostics, conflict
// counts, and fuel spent are bit-identical to the sequential oracle at any
// thread count (see RefinementQuery.h for the mechanisms).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_BATCHVERIFIER_H
#define VERIOPT_VERIFY_BATCHVERIFIER_H

#include "support/ThreadPool.h"
#include "verify/RobustVerifier.h"

#include <string>
#include <vector>

namespace veriopt {

class BatchVerifier {
public:
  struct Options {
    /// Ladder configuration shared with the scoring pass's RobustVerifier;
    /// the two must agree or cache keys will not line up.
    RobustVerifyOptions Robust;
    /// Per-candidate parallelism (the group fans out over the pool; the
    /// context-mutating build phase serializes internally).
    ThreadPool *Pool = nullptr;
    unsigned Threads = 1;
  };

  /// Group-level reuse accounting, also mirrored into batch.* metrics.
  struct GroupStats {
    unsigned Candidates = 0; ///< texts passed in
    unsigned Unique = 0;     ///< distinct canonical candidates
    unsigned CacheHits = 0;  ///< ladder rungs served by existing entries
    unsigned Computed = 0;   ///< ladder rungs computed by this batch
  };

  BatchVerifier(const Options &O, VerifyCache *Cache,
                FaultInjector *Faults = nullptr)
      : Opts(O), Cache(Cache), Faults(Faults) {}

  /// Verify every candidate in \p Texts against \p Src, sharing the source
  /// half across the group. Returns the final ladder result per candidate,
  /// aligned with \p Texts; every computed rung is seeded into the cache
  /// first. \p SrcText must be the printed form of \p Src.
  std::vector<VerifyResult> verifyGroup(const std::string &SrcText,
                                        const Function &Src,
                                        const std::vector<std::string> &Texts,
                                        GroupStats *Stats = nullptr) const;

  /// Single-candidate convenience: a group of one. Used by the evaluation
  /// harness, where greedy decoding yields exactly one candidate per sample
  /// but the shared cache / fault-site plumbing should still apply.
  VerifyResult verifyOne(const std::string &SrcText, const Function &Src,
                         const std::string &Text) const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
  VerifyCache *Cache = nullptr;
  FaultInjector *Faults = nullptr;
};

} // namespace veriopt

#endif // VERIOPT_VERIFY_BATCHVERIFIER_H
