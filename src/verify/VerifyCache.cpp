//===- VerifyCache.cpp - Memoized candidate verification ----------------------//

#include "verify/VerifyCache.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "trace/Metrics.h"

#include <sstream>

namespace veriopt {

namespace {

// Process-wide mirrors of the per-cache Counters, so a run's cache efficacy
// lands in the trace's "metric" lines without plumbing cache pointers around.
Counter &hitCounter() {
  static Counter &C = MetricsRegistry::global().counter("verify.cache.hit");
  return C;
}
Counter &missCounter() {
  static Counter &C = MetricsRegistry::global().counter("verify.cache.miss");
  return C;
}
Counter &joinCounter() {
  static Counter &C =
      MetricsRegistry::global().counter("verify.cache.singleflight_join");
  return C;
}
Counter &evictionCounter() {
  static Counter &C =
      MetricsRegistry::global().counter("verify.cache.eviction");
  return C;
}

} // namespace

std::string VerifyCache::makeKey(const std::string &SrcText,
                                 const std::string &TgtText,
                                 const VerifyOptions &Opts) {
  // Canonical candidate text: parse, alpha-rename (drop all value/block
  // names so the printer's sequential %N numbering takes over), and
  // re-print — whitespace and naming variants of the same IR collapse to
  // one entry. Parse failures key on the raw text (their result depends on
  // it only through "unparseable").
  std::string Canon;
  if (auto M = parseModule(TgtText)) {
    for (const auto &F : M.value()->functions()) {
      for (unsigned I = 0; I < F->getNumParams(); ++I)
        F->getArg(I)->setName("");
      for (auto &BB : *F) {
        BB->setName("");
        for (auto &Inst : *BB)
          Inst->setName("");
      }
    }
    Canon = printModule(*M.value());
  } else {
    Canon = TgtText;
  }

  // Every budget knob is part of the key: a low-tier Inconclusive must never
  // be served for a higher-tier query (or vice versa) when the retry ladder
  // re-asks the same candidate under a bigger budget.
  std::ostringstream OS;
  OS << Opts.MaxPaths << '|' << Opts.MaxBlockVisitsPerPath << '|'
     << Opts.MaxStepsPerPath << '|' << Opts.SolverConflictBudget << '|'
     << Opts.StrictLoops << '|' << Opts.FalsifyTrials << '|'
     << Opts.FuelBudget << '|' << Opts.MaxCandidateBytes << '|'
     << Opts.MaxCandidateInsts;
  std::string Key = OS.str();
  Key.push_back('\x1f');
  Key += SrcText;
  Key.push_back('\x1f');
  Key += Canon;
  return Key;
}

VerifyResult VerifyCache::verify(const std::string &SrcText,
                                 const Function &Src,
                                 const std::string &TgtText,
                                 const VerifyOptions &Opts) {
  std::string Key = makeKey(SrcText, TgtText, Opts);

  // Injected cache miss: bypass the memo entirely (no lookup, no store, no
  // single-flight). Deterministic per key, so every thread asking for this
  // key takes the same path. Verification itself is deterministic, so the
  // result is unchanged — only the work is repeated.
  FaultInjector *FI;
  {
    std::lock_guard<std::mutex> L(M);
    FI = Faults;
  }
  if (FI && FI->shouldInject(FaultSite::CacheMiss, Key)) {
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.Misses;
    }
    missCounter().inc();
    return verifyCandidateText(Src, TgtText, Opts);
  }

  std::shared_ptr<InFlight> Slot;
  bool Owner = false;
  VerdictBackingTier *Tier;
  {
    std::lock_guard<std::mutex> L(M);
    Tier = Store;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      LRU.splice(LRU.begin(), LRU, It->second); // touch
      ++Stats.Hits;
      hitCounter().inc();
      return It->second->second;
    }
    auto PIt = Pending.find(Key);
    if (PIt != Pending.end()) {
      Slot = PIt->second; // join the in-flight computation
      ++Stats.Hits;
      hitCounter().inc();
      joinCounter().inc();
    } else {
      Slot = std::make_shared<InFlight>();
      Pending.emplace(Key, Slot);
      Owner = true;
      ++Stats.Misses;
      missCounter().inc();
    }
  }

  if (!Owner) {
    std::unique_lock<std::mutex> L(Slot->M);
    Slot->ReadyCV.wait(L, [&] { return Slot->Ready; });
    return Slot->Result;
  }

  // Read-through: the single-flight owner probes the durable tier before
  // paying for verification (joiners still block on this thread's slot, so
  // a store hit satisfies the whole flight with one disk-index lookup).
  // Verification is deterministic and the store only admits deterministic
  // verdicts, so a stored result is bit-identical to recomputing. Skipped
  // entirely under fault injection (trust model: chaos runs neither read
  // nor warm the store).
  VerifyResult Result;
  bool FromStore = Tier && !FI && Tier->lookup(Key, Result);
  if (!FromStore) {
    Result = verifyCandidateText(Src, TgtText, Opts);
    // Write-behind: report the fresh verdict; the tier buffers and batches
    // its own journal appends, so this is an in-memory append here.
    if (Tier && !FI)
      Tier->put(Key, Result);
  }

  {
    std::lock_guard<std::mutex> L(M);
    LRU.emplace_front(Key, Result);
    Index.emplace(std::move(Key), LRU.begin());
    while (Capacity && LRU.size() > Capacity) {
      Index.erase(LRU.back().first);
      LRU.pop_back();
      ++Stats.Evictions;
      evictionCounter().inc();
    }
    Pending.erase(LRU.front().first);
  }
  {
    std::lock_guard<std::mutex> L(Slot->M);
    Slot->Result = Result;
    Slot->Ready = true;
  }
  Slot->ReadyCV.notify_all();
  return Result;
}

bool VerifyCache::peek(const std::string &Key, VerifyResult &Out) {
  VerdictBackingTier *Tier;
  {
    std::lock_guard<std::mutex> L(M);
    if (Faults && Faults->shouldInject(FaultSite::CacheMiss, Key))
      return false;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Out = It->second->second;
      return true;
    }
    if (Faults || !Store)
      return false;
    Tier = Store;
  }
  // Memo miss with a durable tier attached: probe it outside the cache
  // mutex (the tier does its own locking) and memoize a hit via the silent
  // seed path, so repeated batch peeks of a warm key stop paying the store
  // index lookup.
  if (!Tier->lookup(Key, Out))
    return false;
  seed(Key, Out);
  return true;
}

void VerifyCache::seed(const std::string &Key, const VerifyResult &R) {
  VerdictBackingTier *Tier = nullptr;
  {
    std::lock_guard<std::mutex> L(M);
    if (Faults && Faults->shouldInject(FaultSite::CacheMiss, Key))
      return;
    if (!Faults)
      Tier = Store;
    if (!Index.count(Key)) {
      LRU.emplace_front(Key, R);
      Index.emplace(Key, LRU.begin());
      while (Capacity && LRU.size() > Capacity) {
        Index.erase(LRU.back().first);
        LRU.pop_back();
        ++Stats.Evictions;
        evictionCounter().inc();
      }
    }
  }
  // Write-behind for batch-computed verdicts too: the batch pass is where
  // evaluation pays its verification, so without this a worker fleet would
  // never warm the store. The tier dedupes (a key it already holds is a
  // no-op), so seeding a store-served result does not re-journal it.
  if (Tier)
    Tier->put(Key, R);
}

VerifyCache::Counters VerifyCache::counters() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}

size_t VerifyCache::size() const {
  std::lock_guard<std::mutex> L(M);
  return LRU.size();
}

void VerifyCache::clear() {
  std::lock_guard<std::mutex> L(M);
  LRU.clear();
  Index.clear();
  Stats = Counters();
}

} // namespace veriopt
