//===- RobustVerifier.h - Escalating-budget verification ---------*- C++ -*-=//
//
// Wraps verifyCandidateText (optionally through VerifyCache) with an
// escalating retry ladder: an Inconclusive verdict caused by budget
// exhaustion (SolverTimeout / ResourceExhausted) is retried at
// geometrically larger budget tiers before being accepted as terminal.
// Non-budget Inconclusives (Unsupported, LoopBound) are never retried — a
// bigger budget cannot change them.
//
// Every decision is deterministic: tier budgets derive from the base
// options alone, retries are triggered by verdict kinds (never wall clock),
// and the optional fault injector is a pure hash of (seed, site, key). The
// trainer's bit-identical-trajectory guarantee therefore survives intact.
//
// Telemetry stays accurate with caching enabled: each tier is a distinct
// cache key (the budget knobs are part of VerifyCache::makeKey), so a later
// identical query replays the same ladder over per-tier cache entries and
// reports the same per-tier outcomes and summed SolverConflicts.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_VERIFY_ROBUSTVERIFIER_H
#define VERIOPT_VERIFY_ROBUSTVERIFIER_H

#include "support/FaultInjector.h"
#include "verify/AliveLite.h"
#include "verify/VerifyCache.h"

#include <atomic>
#include <vector>

namespace veriopt {

/// What one rung of the ladder returned.
struct RetryTierOutcome {
  unsigned Tier = 0;
  VerifyStatus Status = VerifyStatus::Inconclusive;
  DiagKind Kind = DiagKind::None;
  uint64_t SolverConflicts = 0;
  uint64_t FuelSpent = 0;
  bool Injected = false; ///< this tier's verdict came from a fault site
};

struct RobustVerifyOptions {
  /// Tier-0 verification options; higher tiers scale the budget knobs only.
  VerifyOptions Base;
  /// Number of rungs (1 = no retries). The issue's ladder is 2–3 tiers.
  unsigned MaxTiers = 3;
  /// Geometric budget growth per tier: tier k runs with
  /// SolverConflictBudget and FuelBudget multiplied by BudgetGrowth^k
  /// (0-valued budgets stay 0 = unlimited).
  uint64_t BudgetGrowth = 4;
};

class RobustVerifier {
public:
  explicit RobustVerifier(RobustVerifyOptions Opts, VerifyCache *Cache = nullptr,
                          FaultInjector *Faults = nullptr)
      : Opts(Opts), Cache(Cache), Faults(Faults) {}

  struct Outcome {
    /// Final verdict. RetryTier is set to the rung that produced it, and
    /// SolverConflicts / FuelSpent are summed over every rung actually run,
    /// so per-step telemetry reflects total verification work.
    VerifyResult Result;
    std::vector<RetryTierOutcome> Tiers; ///< one entry per rung run
    bool Escalated = false;      ///< more than one rung was needed
    bool FaultInjected = false;  ///< any fault site fired for this query
  };

  /// Verify \p TgtText against \p Src, escalating budgets on budget-bound
  /// Inconclusives. \p SrcText must be the printed form of \p Src (used as
  /// the stable cache/fault key).
  Outcome verify(const std::string &SrcText, const Function &Src,
                 const std::string &TgtText) const;

  /// Options for rung \p Tier (public for tests and the bench).
  VerifyOptions tierOptions(unsigned Tier) const;

  /// A verdict the ladder will retry at a higher budget.
  static bool retryable(const VerifyResult &R) {
    return R.Status == VerifyStatus::Inconclusive &&
           (R.Kind == DiagKind::SolverTimeout ||
            R.Kind == DiagKind::ResourceExhausted);
  }

  const RobustVerifyOptions &options() const { return Opts; }

  struct Counters {
    uint64_t Queries = 0;
    uint64_t Escalations = 0;          ///< queries needing more than tier 0
    uint64_t Rescued = 0;              ///< escalations reaching a verdict
    uint64_t TerminalInconclusive = 0; ///< still budget-bound at the top tier
    uint64_t InjectedBudgetFaults = 0;
    uint64_t InjectedVerdictFlips = 0;
  };
  Counters counters() const;
  void resetCounters();

private:
  VerifyResult runTier(const std::string &SrcText, const Function &Src,
                       const std::string &TgtText,
                       const VerifyOptions &TierOpts) const;

  RobustVerifyOptions Opts;
  VerifyCache *Cache = nullptr;
  FaultInjector *Faults = nullptr;

  mutable std::atomic<uint64_t> NQueries{0};
  mutable std::atomic<uint64_t> NEscalations{0};
  mutable std::atomic<uint64_t> NRescued{0};
  mutable std::atomic<uint64_t> NTerminalInconclusive{0};
  mutable std::atomic<uint64_t> NInjectedBudget{0};
  mutable std::atomic<uint64_t> NInjectedFlips{0};
};

} // namespace veriopt

#endif // VERIOPT_VERIFY_ROBUSTVERIFIER_H
