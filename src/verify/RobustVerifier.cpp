//===- RobustVerifier.cpp - Escalating-budget verification --------------------//

#include "verify/RobustVerifier.h"

#include "trace/Metrics.h"
#include "trace/Trace.h"

namespace veriopt {

namespace {

/// Scale a budget by Growth^Tier, saturating instead of overflowing.
/// 0 means "unlimited" and stays 0.
uint64_t scaleBudget(uint64_t Budget, uint64_t Growth, unsigned Tier) {
  if (Budget == 0 || Growth <= 1)
    return Budget;
  for (unsigned I = 0; I < Tier; ++I) {
    if (Budget > UINT64_MAX / Growth)
      return UINT64_MAX;
    Budget *= Growth;
  }
  return Budget;
}

} // namespace

VerifyOptions RobustVerifier::tierOptions(unsigned Tier) const {
  VerifyOptions T = Opts.Base;
  T.SolverConflictBudget =
      scaleBudget(T.SolverConflictBudget, Opts.BudgetGrowth, Tier);
  T.FuelBudget = scaleBudget(T.FuelBudget, Opts.BudgetGrowth, Tier);
  return T;
}

VerifyResult RobustVerifier::runTier(const std::string &SrcText,
                                     const Function &Src,
                                     const std::string &TgtText,
                                     const VerifyOptions &TierOpts) const {
  if (Cache)
    return Cache->verify(SrcText, Src, TgtText, TierOpts);
  return verifyCandidateText(Src, TgtText, TierOpts);
}

RobustVerifier::Outcome RobustVerifier::verify(const std::string &SrcText,
                                               const Function &Src,
                                               const std::string &TgtText) const {
  NQueries.fetch_add(1, std::memory_order_relaxed);
  Outcome Out;

  // Fault keys are content-derived, so injection decisions are identical
  // for identical queries regardless of thread schedule or arrival order.
  const std::string FaultKey = SrcText + '\x1f' + TgtText;

  const unsigned MaxTiers = Opts.MaxTiers ? Opts.MaxTiers : 1;
  uint64_t TotalConflicts = 0, TotalFuel = 0;
  VerifyResult Final;
  for (unsigned Tier = 0; Tier < MaxTiers; ++Tier) {
    VerifyResult R;
    bool Injected = false;
    if (Tier == 0 && Faults &&
        Faults->shouldInject(FaultSite::OracleBudget, FaultKey)) {
      // Simulated oracle budget exhaustion: the first attempt reports
      // ResourceExhausted without running, and the ladder must recover by
      // escalating exactly as it would for a genuinely hard candidate.
      R.Status = VerifyStatus::Inconclusive;
      R.Kind = DiagKind::ResourceExhausted;
      R.Diagnostic = "Inconclusive: injected oracle budget exhaustion\n";
      Injected = true;
      Out.FaultInjected = true;
      NInjectedBudget.fetch_add(1, std::memory_order_relaxed);
    } else {
      R = runTier(SrcText, Src, TgtText, tierOptions(Tier));
    }

    Out.Tiers.push_back({Tier, R.Status, R.Kind, R.SolverConflicts,
                         R.FuelSpent, Injected});
    TraceRecorder::instance().instant(
        "verify.tier",
        {TraceArg::ofInt("tier", Tier),
         TraceArg::ofStr("status", verifyStatusName(R.Status)),
         TraceArg::ofStr("diag", diagKindName(R.Kind)),
         TraceArg::ofInt("conflicts", static_cast<int64_t>(R.SolverConflicts)),
         TraceArg::ofInt("fuel", static_cast<int64_t>(R.FuelSpent)),
         TraceArg::ofBool("injected", Injected)});
    TotalConflicts += R.SolverConflicts;
    TotalFuel += R.FuelSpent;
    Final = std::move(R);
    Final.RetryTier = Tier;

    if (!retryable(Final))
      break;
  }

  MetricsRegistry &Reg = MetricsRegistry::global();
  static Counter &MQueries = Reg.counter("verify.retry.queries");
  static Counter &MEscalations = Reg.counter("verify.retry.escalations");
  static Counter &MRescued = Reg.counter("verify.retry.rescued");
  static Counter &MTerminal =
      Reg.counter("verify.retry.terminal_inconclusive");
  MQueries.inc();
  if (Out.Tiers.size() > 1) {
    Out.Escalated = true;
    NEscalations.fetch_add(1, std::memory_order_relaxed);
    MEscalations.inc();
    if (retryable(Final)) {
      NTerminalInconclusive.fetch_add(1, std::memory_order_relaxed);
      MTerminal.inc();
    } else {
      NRescued.fetch_add(1, std::memory_order_relaxed);
      MRescued.inc();
    }
  } else if (retryable(Final)) {
    // Single-rung ladder that still ran out of budget.
    NTerminalInconclusive.fetch_add(1, std::memory_order_relaxed);
    MTerminal.inc();
  }

  // Simulated oracle bug: flip a definitive verdict. The trainer must
  // tolerate occasional wrong rewards with bounded impact (GRPO's group
  // baseline absorbs them); this site lets tests prove that.
  if (Faults && (Final.Status == VerifyStatus::Equivalent ||
                 Final.Status == VerifyStatus::NotEquivalent) &&
      Faults->shouldInject(FaultSite::VerdictFlip, FaultKey)) {
    Out.FaultInjected = true;
    NInjectedFlips.fetch_add(1, std::memory_order_relaxed);
    if (Final.Status == VerifyStatus::Equivalent) {
      Final.Status = VerifyStatus::NotEquivalent;
      Final.Kind = DiagKind::ValueMismatch;
      Final.Diagnostic += "(injected verdict flip)\n";
    } else {
      Final.Status = VerifyStatus::Equivalent;
      Final.Kind = DiagKind::None;
      Final.Counterexample.clear();
      Final.Diagnostic += "(injected verdict flip)\n";
    }
  }

  Final.SolverConflicts = TotalConflicts;
  Final.FuelSpent = TotalFuel;
  Out.Result = std::move(Final);
  return Out;
}

RobustVerifier::Counters RobustVerifier::counters() const {
  Counters C;
  C.Queries = NQueries.load(std::memory_order_relaxed);
  C.Escalations = NEscalations.load(std::memory_order_relaxed);
  C.Rescued = NRescued.load(std::memory_order_relaxed);
  C.TerminalInconclusive =
      NTerminalInconclusive.load(std::memory_order_relaxed);
  C.InjectedBudgetFaults = NInjectedBudget.load(std::memory_order_relaxed);
  C.InjectedVerdictFlips = NInjectedFlips.load(std::memory_order_relaxed);
  return C;
}

void RobustVerifier::resetCounters() {
  NQueries.store(0, std::memory_order_relaxed);
  NEscalations.store(0, std::memory_order_relaxed);
  NRescued.store(0, std::memory_order_relaxed);
  NTerminalInconclusive.store(0, std::memory_order_relaxed);
  NInjectedBudget.store(0, std::memory_order_relaxed);
  NInjectedFlips.store(0, std::memory_order_relaxed);
}

} // namespace veriopt
