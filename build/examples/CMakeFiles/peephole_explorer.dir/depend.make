# Empty dependencies file for peephole_explorer.
# This may be replaced when dependencies are built.
