file(REMOVE_RECURSE
  "CMakeFiles/peephole_explorer.dir/peephole_explorer.cpp.o"
  "CMakeFiles/peephole_explorer.dir/peephole_explorer.cpp.o.d"
  "peephole_explorer"
  "peephole_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peephole_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
