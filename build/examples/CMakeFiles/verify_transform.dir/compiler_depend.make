# Empty compiler generated dependencies file for verify_transform.
# This may be replaced when dependencies are built.
