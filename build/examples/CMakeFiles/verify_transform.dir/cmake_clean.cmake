file(REMOVE_RECURSE
  "CMakeFiles/verify_transform.dir/verify_transform.cpp.o"
  "CMakeFiles/verify_transform.dir/verify_transform.cpp.o.d"
  "verify_transform"
  "verify_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
