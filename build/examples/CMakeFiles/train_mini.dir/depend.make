# Empty dependencies file for train_mini.
# This may be replaced when dependencies are built.
