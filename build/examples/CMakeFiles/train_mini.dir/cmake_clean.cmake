file(REMOVE_RECURSE
  "CMakeFiles/train_mini.dir/train_mini.cpp.o"
  "CMakeFiles/train_mini.dir/train_mini.cpp.o.d"
  "train_mini"
  "train_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
