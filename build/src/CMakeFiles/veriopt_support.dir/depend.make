# Empty dependencies file for veriopt_support.
# This may be replaced when dependencies are built.
