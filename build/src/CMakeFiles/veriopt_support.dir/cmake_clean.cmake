file(REMOVE_RECURSE
  "CMakeFiles/veriopt_support.dir/support/APInt64.cpp.o"
  "CMakeFiles/veriopt_support.dir/support/APInt64.cpp.o.d"
  "CMakeFiles/veriopt_support.dir/support/RNG.cpp.o"
  "CMakeFiles/veriopt_support.dir/support/RNG.cpp.o.d"
  "CMakeFiles/veriopt_support.dir/support/Stats.cpp.o"
  "CMakeFiles/veriopt_support.dir/support/Stats.cpp.o.d"
  "libveriopt_support.a"
  "libveriopt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
