file(REMOVE_RECURSE
  "libveriopt_support.a"
)
