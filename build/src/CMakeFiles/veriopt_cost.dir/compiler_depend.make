# Empty compiler generated dependencies file for veriopt_cost.
# This may be replaced when dependencies are built.
