file(REMOVE_RECURSE
  "CMakeFiles/veriopt_cost.dir/cost/CostModel.cpp.o"
  "CMakeFiles/veriopt_cost.dir/cost/CostModel.cpp.o.d"
  "libveriopt_cost.a"
  "libveriopt_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
