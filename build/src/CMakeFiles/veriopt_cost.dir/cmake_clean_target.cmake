file(REMOVE_RECURSE
  "libveriopt_cost.a"
)
