file(REMOVE_RECURSE
  "libveriopt_opt.a"
)
