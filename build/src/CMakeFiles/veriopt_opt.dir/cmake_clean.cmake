file(REMOVE_RECURSE
  "CMakeFiles/veriopt_opt.dir/opt/InstCombine.cpp.o"
  "CMakeFiles/veriopt_opt.dir/opt/InstCombine.cpp.o.d"
  "CMakeFiles/veriopt_opt.dir/opt/Mem2Reg.cpp.o"
  "CMakeFiles/veriopt_opt.dir/opt/Mem2Reg.cpp.o.d"
  "CMakeFiles/veriopt_opt.dir/opt/Pass.cpp.o"
  "CMakeFiles/veriopt_opt.dir/opt/Pass.cpp.o.d"
  "CMakeFiles/veriopt_opt.dir/opt/SimplifyCFG.cpp.o"
  "CMakeFiles/veriopt_opt.dir/opt/SimplifyCFG.cpp.o.d"
  "libveriopt_opt.a"
  "libveriopt_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
