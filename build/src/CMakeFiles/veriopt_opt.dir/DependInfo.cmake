
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/InstCombine.cpp" "src/CMakeFiles/veriopt_opt.dir/opt/InstCombine.cpp.o" "gcc" "src/CMakeFiles/veriopt_opt.dir/opt/InstCombine.cpp.o.d"
  "/root/repo/src/opt/Mem2Reg.cpp" "src/CMakeFiles/veriopt_opt.dir/opt/Mem2Reg.cpp.o" "gcc" "src/CMakeFiles/veriopt_opt.dir/opt/Mem2Reg.cpp.o.d"
  "/root/repo/src/opt/Pass.cpp" "src/CMakeFiles/veriopt_opt.dir/opt/Pass.cpp.o" "gcc" "src/CMakeFiles/veriopt_opt.dir/opt/Pass.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/CMakeFiles/veriopt_opt.dir/opt/SimplifyCFG.cpp.o" "gcc" "src/CMakeFiles/veriopt_opt.dir/opt/SimplifyCFG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veriopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
