# Empty compiler generated dependencies file for veriopt_opt.
# This may be replaced when dependencies are built.
