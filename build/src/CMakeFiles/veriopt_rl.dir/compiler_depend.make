# Empty compiler generated dependencies file for veriopt_rl.
# This may be replaced when dependencies are built.
