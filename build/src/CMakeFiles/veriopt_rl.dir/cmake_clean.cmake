file(REMOVE_RECURSE
  "CMakeFiles/veriopt_rl.dir/rl/Reward.cpp.o"
  "CMakeFiles/veriopt_rl.dir/rl/Reward.cpp.o.d"
  "CMakeFiles/veriopt_rl.dir/rl/Trainer.cpp.o"
  "CMakeFiles/veriopt_rl.dir/rl/Trainer.cpp.o.d"
  "libveriopt_rl.a"
  "libveriopt_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
