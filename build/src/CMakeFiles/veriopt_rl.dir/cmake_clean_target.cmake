file(REMOVE_RECURSE
  "libveriopt_rl.a"
)
