file(REMOVE_RECURSE
  "libveriopt_verify.a"
)
