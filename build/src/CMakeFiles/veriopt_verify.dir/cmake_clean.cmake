file(REMOVE_RECURSE
  "CMakeFiles/veriopt_verify.dir/verify/AliveLite.cpp.o"
  "CMakeFiles/veriopt_verify.dir/verify/AliveLite.cpp.o.d"
  "CMakeFiles/veriopt_verify.dir/verify/Encoder.cpp.o"
  "CMakeFiles/veriopt_verify.dir/verify/Encoder.cpp.o.d"
  "libveriopt_verify.a"
  "libveriopt_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
