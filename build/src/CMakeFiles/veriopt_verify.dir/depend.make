# Empty dependencies file for veriopt_verify.
# This may be replaced when dependencies are built.
