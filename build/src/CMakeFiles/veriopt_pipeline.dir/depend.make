# Empty dependencies file for veriopt_pipeline.
# This may be replaced when dependencies are built.
