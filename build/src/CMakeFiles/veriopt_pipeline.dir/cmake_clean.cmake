file(REMOVE_RECURSE
  "CMakeFiles/veriopt_pipeline.dir/pipeline/Evaluation.cpp.o"
  "CMakeFiles/veriopt_pipeline.dir/pipeline/Evaluation.cpp.o.d"
  "CMakeFiles/veriopt_pipeline.dir/pipeline/Pipeline.cpp.o"
  "CMakeFiles/veriopt_pipeline.dir/pipeline/Pipeline.cpp.o.d"
  "libveriopt_pipeline.a"
  "libveriopt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
