file(REMOVE_RECURSE
  "libveriopt_pipeline.a"
)
