file(REMOVE_RECURSE
  "CMakeFiles/veriopt_data.dir/data/Dataset.cpp.o"
  "CMakeFiles/veriopt_data.dir/data/Dataset.cpp.o.d"
  "CMakeFiles/veriopt_data.dir/data/MiniC.cpp.o"
  "CMakeFiles/veriopt_data.dir/data/MiniC.cpp.o.d"
  "libveriopt_data.a"
  "libveriopt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
