# Empty compiler generated dependencies file for veriopt_data.
# This may be replaced when dependencies are built.
