file(REMOVE_RECURSE
  "libveriopt_data.a"
)
