file(REMOVE_RECURSE
  "libveriopt_textgen.a"
)
