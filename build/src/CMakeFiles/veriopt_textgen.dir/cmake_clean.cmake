file(REMOVE_RECURSE
  "CMakeFiles/veriopt_textgen.dir/textgen/Bleu.cpp.o"
  "CMakeFiles/veriopt_textgen.dir/textgen/Bleu.cpp.o.d"
  "libveriopt_textgen.a"
  "libveriopt_textgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_textgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
