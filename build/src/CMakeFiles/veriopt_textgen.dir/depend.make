# Empty dependencies file for veriopt_textgen.
# This may be replaced when dependencies are built.
