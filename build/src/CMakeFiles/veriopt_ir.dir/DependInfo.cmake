
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/CMakeFiles/veriopt_ir.dir/analysis/CFG.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/analysis/CFG.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/CMakeFiles/veriopt_ir.dir/ir/IR.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/ir/IR.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/veriopt_ir.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/veriopt_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/veriopt_ir.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/veriopt_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/veriopt_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veriopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
