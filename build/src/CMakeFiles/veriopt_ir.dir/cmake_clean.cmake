file(REMOVE_RECURSE
  "CMakeFiles/veriopt_ir.dir/analysis/CFG.cpp.o"
  "CMakeFiles/veriopt_ir.dir/analysis/CFG.cpp.o.d"
  "CMakeFiles/veriopt_ir.dir/ir/IR.cpp.o"
  "CMakeFiles/veriopt_ir.dir/ir/IR.cpp.o.d"
  "CMakeFiles/veriopt_ir.dir/ir/Parser.cpp.o"
  "CMakeFiles/veriopt_ir.dir/ir/Parser.cpp.o.d"
  "CMakeFiles/veriopt_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/veriopt_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/veriopt_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/veriopt_ir.dir/ir/Type.cpp.o.d"
  "CMakeFiles/veriopt_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/veriopt_ir.dir/ir/Verifier.cpp.o.d"
  "libveriopt_ir.a"
  "libveriopt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
