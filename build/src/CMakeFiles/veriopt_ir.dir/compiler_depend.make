# Empty compiler generated dependencies file for veriopt_ir.
# This may be replaced when dependencies are built.
