file(REMOVE_RECURSE
  "libveriopt_ir.a"
)
