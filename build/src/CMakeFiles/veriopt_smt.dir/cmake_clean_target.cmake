file(REMOVE_RECURSE
  "libveriopt_smt.a"
)
