# Empty dependencies file for veriopt_smt.
# This may be replaced when dependencies are built.
