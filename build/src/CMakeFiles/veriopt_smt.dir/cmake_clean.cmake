file(REMOVE_RECURSE
  "CMakeFiles/veriopt_smt.dir/smt/BVExpr.cpp.o"
  "CMakeFiles/veriopt_smt.dir/smt/BVExpr.cpp.o.d"
  "CMakeFiles/veriopt_smt.dir/smt/BitBlaster.cpp.o"
  "CMakeFiles/veriopt_smt.dir/smt/BitBlaster.cpp.o.d"
  "CMakeFiles/veriopt_smt.dir/smt/Sat.cpp.o"
  "CMakeFiles/veriopt_smt.dir/smt/Sat.cpp.o.d"
  "CMakeFiles/veriopt_smt.dir/smt/Solver.cpp.o"
  "CMakeFiles/veriopt_smt.dir/smt/Solver.cpp.o.d"
  "libveriopt_smt.a"
  "libveriopt_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
