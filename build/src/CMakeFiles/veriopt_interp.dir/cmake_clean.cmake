file(REMOVE_RECURSE
  "CMakeFiles/veriopt_interp.dir/interp/Interpreter.cpp.o"
  "CMakeFiles/veriopt_interp.dir/interp/Interpreter.cpp.o.d"
  "libveriopt_interp.a"
  "libveriopt_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
