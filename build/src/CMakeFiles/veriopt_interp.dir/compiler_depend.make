# Empty compiler generated dependencies file for veriopt_interp.
# This may be replaced when dependencies are built.
