file(REMOVE_RECURSE
  "libveriopt_interp.a"
)
