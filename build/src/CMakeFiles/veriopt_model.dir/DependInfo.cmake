
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/Policy.cpp" "src/CMakeFiles/veriopt_model.dir/model/Policy.cpp.o" "gcc" "src/CMakeFiles/veriopt_model.dir/model/Policy.cpp.o.d"
  "/root/repo/src/model/Prompt.cpp" "src/CMakeFiles/veriopt_model.dir/model/Prompt.cpp.o" "gcc" "src/CMakeFiles/veriopt_model.dir/model/Prompt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veriopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_textgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
