file(REMOVE_RECURSE
  "CMakeFiles/veriopt_model.dir/model/Policy.cpp.o"
  "CMakeFiles/veriopt_model.dir/model/Policy.cpp.o.d"
  "CMakeFiles/veriopt_model.dir/model/Prompt.cpp.o"
  "CMakeFiles/veriopt_model.dir/model/Prompt.cpp.o.d"
  "libveriopt_model.a"
  "libveriopt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriopt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
