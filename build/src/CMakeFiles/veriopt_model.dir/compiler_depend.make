# Empty compiler generated dependencies file for veriopt_model.
# This may be replaced when dependencies are built.
