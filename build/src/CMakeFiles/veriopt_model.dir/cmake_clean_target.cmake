file(REMOVE_RECURSE
  "libveriopt_model.a"
)
