# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/ir_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/textgen_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
