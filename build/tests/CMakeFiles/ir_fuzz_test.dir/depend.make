# Empty dependencies file for ir_fuzz_test.
# This may be replaced when dependencies are built.
