file(REMOVE_RECURSE
  "CMakeFiles/ir_fuzz_test.dir/ir/ParserFuzzTest.cpp.o"
  "CMakeFiles/ir_fuzz_test.dir/ir/ParserFuzzTest.cpp.o.d"
  "ir_fuzz_test"
  "ir_fuzz_test.pdb"
  "ir_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
