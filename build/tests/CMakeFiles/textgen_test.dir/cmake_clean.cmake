file(REMOVE_RECURSE
  "CMakeFiles/textgen_test.dir/textgen/BleuTest.cpp.o"
  "CMakeFiles/textgen_test.dir/textgen/BleuTest.cpp.o.d"
  "textgen_test"
  "textgen_test.pdb"
  "textgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
