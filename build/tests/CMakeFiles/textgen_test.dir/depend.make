# Empty dependencies file for textgen_test.
# This may be replaced when dependencies are built.
