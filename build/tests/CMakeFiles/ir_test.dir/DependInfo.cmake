
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/CFGTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/CFGTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/CFGTest.cpp.o.d"
  "/root/repo/tests/ir/CloneTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/CloneTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/CloneTest.cpp.o.d"
  "/root/repo/tests/ir/ParserTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o.d"
  "/root/repo/tests/ir/PrinterTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o.d"
  "/root/repo/tests/ir/TypeTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/TypeTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/TypeTest.cpp.o.d"
  "/root/repo/tests/ir/ValueTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ValueTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/VerifierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veriopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veriopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
