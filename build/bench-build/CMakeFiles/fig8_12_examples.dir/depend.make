# Empty dependencies file for fig8_12_examples.
# This may be replaced when dependencies are built.
