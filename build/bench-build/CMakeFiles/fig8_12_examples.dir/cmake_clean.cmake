file(REMOVE_RECURSE
  "../bench/fig8_12_examples"
  "../bench/fig8_12_examples.pdb"
  "CMakeFiles/fig8_12_examples.dir/fig8_12_examples.cpp.o"
  "CMakeFiles/fig8_12_examples.dir/fig8_12_examples.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_12_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
