# Empty compiler generated dependencies file for fig6_pairwise.
# This may be replaced when dependencies are built.
