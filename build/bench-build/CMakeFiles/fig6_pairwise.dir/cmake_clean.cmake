file(REMOVE_RECURSE
  "../bench/fig6_pairwise"
  "../bench/fig6_pairwise.pdb"
  "CMakeFiles/fig6_pairwise.dir/fig6_pairwise.cpp.o"
  "CMakeFiles/fig6_pairwise.dir/fig6_pairwise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
