file(REMOVE_RECURSE
  "../bench/table3_metrics"
  "../bench/table3_metrics.pdb"
  "CMakeFiles/table3_metrics.dir/table3_metrics.cpp.o"
  "CMakeFiles/table3_metrics.dir/table3_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
