# Empty compiler generated dependencies file for table3_metrics.
# This may be replaced when dependencies are built.
