file(REMOVE_RECURSE
  "../bench/fig7_ablation"
  "../bench/fig7_ablation.pdb"
  "CMakeFiles/fig7_ablation.dir/fig7_ablation.cpp.o"
  "CMakeFiles/fig7_ablation.dir/fig7_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
