file(REMOVE_RECURSE
  "../bench/fig5_baselines"
  "../bench/fig5_baselines.pdb"
  "CMakeFiles/fig5_baselines.dir/fig5_baselines.cpp.o"
  "CMakeFiles/fig5_baselines.dir/fig5_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
