# Empty dependencies file for fig5_baselines.
# This may be replaced when dependencies are built.
