file(REMOVE_RECURSE
  "../bench/table2_veriopt"
  "../bench/table2_veriopt.pdb"
  "CMakeFiles/table2_veriopt.dir/table2_veriopt.cpp.o"
  "CMakeFiles/table2_veriopt.dir/table2_veriopt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_veriopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
