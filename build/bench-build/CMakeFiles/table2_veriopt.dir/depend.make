# Empty dependencies file for table2_veriopt.
# This may be replaced when dependencies are built.
