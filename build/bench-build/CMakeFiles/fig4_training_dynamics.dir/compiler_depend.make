# Empty compiler generated dependencies file for fig4_training_dynamics.
# This may be replaced when dependencies are built.
