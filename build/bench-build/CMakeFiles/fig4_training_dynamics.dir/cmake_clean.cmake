file(REMOVE_RECURSE
  "../bench/fig4_training_dynamics"
  "../bench/fig4_training_dynamics.pdb"
  "CMakeFiles/fig4_training_dynamics.dir/fig4_training_dynamics.cpp.o"
  "CMakeFiles/fig4_training_dynamics.dir/fig4_training_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_training_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
