//===- fig7_ablation.cpp - Fig. 7: four-model ablation ----------------------===//
//
// Paper Fig. 7: geomean improvements vs -O0 (latency / icount / size) and
// correctness for the four progressive models: MODEL-ZERO, WARM-UP,
// MODEL-CORRECTNESS, MODEL-LATENCY. Expected shape: each stage contributes;
// the warm-up unlocks different-correct capability, correctness GRPO
// consolidates it, the latency stage adds speed without losing
// correctness.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

namespace {

void row(const char *Name, const EvalResult &E) {
  std::printf("%-18s %9.2fx %9.3f %9.3f %8.1f%% %10.1f%%\n", Name,
              E.GeoSpeedupVsO0, E.ICount.GeoRatio, E.Size.GeoRatio,
              E.Taxonomy.pct(E.Taxonomy.Correct),
              E.Taxonomy.differentCorrectRate());
}

} // namespace

int main() {
  bench::header("Fig. 7 — ablation over the four progressive models",
                "Fig. 7");

  Dataset DS = buildDataset(bench::benchDataset());
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());

  std::printf("%-18s %10s %9s %9s %9s %11s\n", "model", "latency",
              "icount", "size", "correct", "diff-corr");
  std::printf("%-18s %10s %9s %9s %9s %11s\n", "", "(vs-O0,hi)",
              "(ratio,lo)", "(ratio,lo)", "", "");
  row("base (qwen-3b)",
      evaluateModel(*Art.Base, DS.Valid, PromptMode::Generic));
  row("MODEL-ZERO",
      evaluateModel(*Art.ModelZero, DS.Valid, PromptMode::Generic));
  row("WARM-UP (SFT)",
      evaluateModel(*Art.WarmUp, DS.Valid, PromptMode::Augmented));
  row("MODEL-CORRECTNESS",
      evaluateModel(*Art.Correctness, DS.Valid, PromptMode::Augmented));
  row("MODEL-LATENCY",
      evaluateModel(*Art.Latency, DS.Valid, PromptMode::Generic));
  row("instcombine (ref)", evaluateReferencePass(DS.Valid));

  std::printf("\nharvested diagnostic-augmented samples: %u corrections + "
              "%u first-time\n",
              Art.CorrectionSamples, Art.FirstTimeSamples);
  std::printf("paper reference: each stage adds critical improvements; "
              "MODEL-LATENCY also matches/raises correctness relative to "
              "MODEL-CORRECTNESS\n");
  return 0;
}
