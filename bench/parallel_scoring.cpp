//===- parallel_scoring.cpp - Rollout-scoring hot-path bench ---------------===//
//
// Measures the tentpole of the parallel-scoring PR: GRPO rollout scoring
// (the verification-dominated hot path of runTrainingPipeline) serial vs.
// threaded vs. memoized, and checks the determinism guarantee — identical
// reward trajectories across all configurations. Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "verify/VerifyCache.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

struct RunResult {
  std::vector<TrainLogEntry> Logs;
  double ScoreWallMs = 0;
  VerifyCache::Counters Cache;
  unsigned FalsifyWins = 0;
  uint64_t SolverConflicts = 0;
};

RunResult run(const Dataset &DS, unsigned Threads, size_t CacheCapacity,
              unsigned Steps) {
  RunResult Out;
  RewritePolicyModel Model(presetQwen3B());
  std::unique_ptr<VerifyCache> Cache;
  if (CacheCapacity)
    Cache = std::make_unique<VerifyCache>(CacheCapacity);

  VerifyOptions V = PipelineOptions::trainVerifyDefaults();
  GRPOOptions G;
  G.Seed = 7;
  G.Threads = Threads;
  G.Cache = Cache.get();
  GRPOTrainer Trainer(Model, makeAnswerReward(V, Cache.get()), G);
  Out.Logs = Trainer.train(DS.Train, Steps);

  for (const TrainLogEntry &E : Out.Logs) {
    Out.ScoreWallMs += E.ScoreWallMs;
    Out.FalsifyWins += E.FalsifyWins;
    Out.SolverConflicts += E.SolverConflicts;
  }
  if (Cache)
    Out.Cache = Cache->counters();
  return Out;
}

bool sameTrajectory(const RunResult &A, const RunResult &B) {
  if (A.Logs.size() != B.Logs.size())
    return false;
  for (size_t I = 0; I < A.Logs.size(); ++I)
    if (A.Logs[I].MeanReward != B.Logs[I].MeanReward ||
        A.Logs[I].EquivalentRate != B.Logs[I].EquivalentRate ||
        A.Logs[I].CopyRate != B.Logs[I].CopyRate ||
        A.Logs[I].GradNorm != B.Logs[I].GradNorm)
      return false;
  return true;
}

void row(const char *Name, const RunResult &R, double BaselineMs) {
  std::printf("%-28s %9.1f ms   %5.2fx   hit-rate %5.1f%%   falsify-wins "
              "%4u   conflicts %8llu\n",
              Name, R.ScoreWallMs, BaselineMs / R.ScoreWallMs,
              100.0 * R.Cache.hitRate(), R.FalsifyWins,
              static_cast<unsigned long long>(R.SolverConflicts));
}

} // namespace

int main(int Argc, char **Argv) {
  // Tiny mode: the CI determinism + bench-regression gate. Small fixed
  // corpus, fixed thread counts — every deterministic instrument in the
  // BENCH json must reproduce bit-for-bit across machines.
  const bool Tiny = Argc > 1 && std::strcmp(Argv[1], "--tiny") == 0;

  header("Rollout-scoring wall clock: serial vs. threads vs. verify cache",
         "the PR-1 tentpole; not a paper figure");

  DatasetOptions D;
  D.TrainCount = Tiny ? 4 : 16 * scale();
  D.ValidCount = 0;
  D.Seed = 2026;
  Dataset DS = buildDataset(D);
  unsigned Steps = Tiny ? 6 : 30 * scale();
  std::printf("corpus %zu prompts, %u steps, group 8 x 4 prompts/step\n\n",
              DS.Train.size(), Steps);

  RunResult Serial = run(DS, /*Threads=*/1, /*CacheCapacity=*/0, Steps);
  RunResult Cached = run(DS, /*Threads=*/1, /*CacheCapacity=*/4096, Steps);
  RunResult Threaded = run(DS, /*Threads=*/4, /*CacheCapacity=*/0, Steps);
  RunResult Both = run(DS, /*Threads=*/4, /*CacheCapacity=*/4096, Steps);

  row("serial, no cache", Serial, Serial.ScoreWallMs);
  row("serial + cache", Cached, Serial.ScoreWallMs);
  row("4 threads, no cache", Threaded, Serial.ScoreWallMs);
  row("4 threads + cache", Both, Serial.ScoreWallMs);

  bool Det = sameTrajectory(Serial, Cached) &&
             sameTrajectory(Serial, Threaded) && sameTrajectory(Serial, Both);
  std::printf("\ndeterminism (identical reward/equivalence trajectories "
              "across all configs): %s\n",
              Det ? "OK" : "VIOLATED");

  // Headline numbers, published into the shared BENCH_*.json schema.
  MetricsRegistry &M = MetricsRegistry::global();
  auto publish = [&](const char *Key, const RunResult &R) {
    M.gauge(std::string("bench.score_wall_ms.") + Key).set(R.ScoreWallMs);
    M.gauge(std::string("bench.speedup.") + Key)
        .set(Serial.ScoreWallMs / R.ScoreWallMs);
    M.gauge(std::string("bench.cache_hit_rate.") + Key).set(R.Cache.hitRate());
  };
  publish("serial", Serial);
  publish("serial_cache", Cached);
  publish("threads4", Threaded);
  publish("threads4_cache", Both);
  M.gauge("bench.determinism_ok").set(Det ? 1 : 0);
  writeBenchJson("parallel_scoring");
  return Det ? 0 : 1;
}
