//===- fig6_pairwise.cpp - Fig. 6: pairwise distributions vs baselines -----===//
//
// Paper Fig. 6: (a)/(b) VeriOpt and -instcombine improvements over -O0 are
// broadly similar; (c) head-to-head, VeriOpt beats -instcombine on ~20% of
// functions (20.1% in the paper), loses ~22.6%, ties 57.3%; composing with
// a fallback (take whichever is better) yields a further geomean gain
// (+17% latency in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Stats.h"

using namespace veriopt;

int main() {
  bench::header("Fig. 6 — pairwise distributions vs -O0 and vs instcombine",
                "Fig. 6(a)-(c)");

  Dataset DS = buildDataset(bench::benchDataset());
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());

  EvalResult Model =
      evaluateModel(*Art.Latency, DS.Valid, PromptMode::Generic);
  EvalResult Ref = evaluateReferencePass(DS.Valid);

  std::printf("(a)/(b) improvements over -O0 (geomean):\n");
  std::printf("  %-14s latency %5.2fx  icount ratio %5.3f  size ratio "
              "%5.3f\n",
              "veriopt", Model.GeoSpeedupVsO0, Model.ICount.GeoRatio,
              Model.Size.GeoRatio);
  std::printf("  %-14s latency %5.2fx  icount ratio %5.3f  size ratio "
              "%5.3f\n",
              "instcombine", Ref.GeoSpeedupVsO0, Ref.ICount.GeoRatio,
              Ref.Size.GeoRatio);

  unsigned N = Model.Taxonomy.Total;
  std::printf("\n(c) veriopt vs instcombine on latency, per function:\n");
  std::printf("  better %5.1f%%   worse %5.1f%%   tie %5.1f%%\n",
              100.0 * Model.VsRefBetter / N, 100.0 * Model.VsRefWorse / N,
              100.0 * Model.VsRefTie / N);
  std::printf("  paper: better 20.1%%, worse 22.6%%, tie 57.3%%\n");

  // Fallback composition: keep whichever output is faster per function.
  std::printf("\nfallback composition (min of both, per function):\n");
  std::printf("  latency gain over instcombine alone: %+5.1f%% "
              "(paper: +17%%)\n",
              100.0 * Model.FallbackGainOverRef);

  // ICount / size pairwise, as the paper reports similar patterns.
  {
    unsigned B = 0, W = 0, T = 0;
    std::vector<double> FallbackIC;
    for (const SampleEval &E : Model.PerSample) {
      if (E.ICountOut < E.ICountRef)
        ++B;
      else if (E.ICountOut > E.ICountRef)
        ++W;
      else
        ++T;
      FallbackIC.push_back(
          static_cast<double>(E.ICountRef) /
          std::max(1u, std::min(E.ICountOut, E.ICountRef)));
    }
    std::printf("  icount:  better %4.1f%% worse %4.1f%% tie %4.1f%%, "
                "fallback gain %+4.1f%% (paper: +13.9%%)\n",
                100.0 * B / N, 100.0 * W / N, 100.0 * T / N,
                100.0 * (geomean(FallbackIC) - 1.0));
  }
  {
    unsigned B = 0, W = 0, T = 0;
    std::vector<double> FallbackSz;
    for (const SampleEval &E : Model.PerSample) {
      if (E.SizeOut < E.SizeRef)
        ++B;
      else if (E.SizeOut > E.SizeRef)
        ++W;
      else
        ++T;
      FallbackSz.push_back(static_cast<double>(E.SizeRef) /
                           std::max(1u, std::min(E.SizeOut, E.SizeRef)));
    }
    std::printf("  size:    better %4.1f%% worse %4.1f%% tie %4.1f%%, "
                "fallback gain %+4.1f%% (paper: +2.1%%)\n",
                100.0 * B / N, 100.0 * W / N, 100.0 * T / N,
                100.0 * (geomean(FallbackSz) - 1.0));
  }
  return 0;
}
