//===- batch_verify.cpp - Sequential vs batched group verification ---------===//
//
// Measures the incremental-SAT tentpole: verifying a whole GRPO group
// (G = 8 candidates per source) through one shared solver context —
// source falsification, encoding, and CNF prefix built once, candidates
// activated behind assumption selectors, renaming duplicates deduped —
// against the sequential oracle that verifies each candidate from scratch.
//
// The batch path's verdict stream must be bit-identical to the sequential
// one; this binary exits nonzero on any divergence, so CI can run it in
// `--tiny` mode as a cheap differential gate. Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "verify/BatchVerifier.h"

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// Parse-strip-reprint: a renaming duplicate of \p Text (the kind GRPO's
/// small action space emits constantly). Falls back to the input on parse
/// failure.
std::string renamed(const std::string &Text) {
  auto M = parseModule(Text);
  if (!M.hasValue())
    return Text;
  for (const auto &F : M.value()->functions()) {
    for (unsigned I = 0; I < F->getNumParams(); ++I)
      F->getArg(I)->setName("");
    for (auto &BB : *F) {
      BB->setName("");
      for (auto &Inst : *BB)
        Inst->setName("");
    }
  }
  return printModule(*M.value());
}

/// Deterministic "wrong candidate": flip the first add<->sub (else bump the
/// first small integer literal). May also yield unparseable text — fine,
/// both paths see the same bytes.
std::string corrupted(const std::string &Text) {
  std::string Out = Text;
  size_t P = Out.find(" add ");
  if (P != std::string::npos) {
    Out.replace(P, 5, " sub ");
    return Out;
  }
  P = Out.find(" sub ");
  if (P != std::string::npos) {
    Out.replace(P, 5, " add ");
    return Out;
  }
  P = Out.find(", 1");
  if (P != std::string::npos)
    Out.replace(P, 3, ", 7");
  return Out;
}

/// A realistic G=8 group for one prompt: the reference rewrite, a verbatim
/// copy, renaming duplicates, a byte-identical repeat, a corrupted
/// candidate, and a truncated (unparseable) one.
std::vector<std::string> makeGroup(const Sample &S) {
  std::vector<std::string> G;
  G.push_back(S.RefText);
  G.push_back(S.SrcText); // copy-of-input candidate
  G.push_back(renamed(S.RefText));
  G.push_back(corrupted(S.RefText));
  G.push_back(S.RefText); // byte-identical repeat
  G.push_back(S.SrcText.substr(0, S.SrcText.size() / 2)); // truncated
  G.push_back(renamed(S.SrcText));
  G.push_back(corrupted(S.SrcText));
  return G;
}

struct VerdictKey {
  VerifyStatus Status;
  DiagKind Kind;
  uint64_t Conflicts;
  uint64_t Fuel;
  unsigned Tier;
  bool operator==(const VerdictKey &O) const {
    return Status == O.Status && Kind == O.Kind && Conflicts == O.Conflicts &&
           Fuel == O.Fuel && Tier == O.Tier;
  }
};

VerdictKey keyOf(const VerifyResult &R) {
  return {R.Status, R.Kind, R.SolverConflicts, R.FuelSpent, R.RetryTier};
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Tiny = Argc > 1 && std::strcmp(Argv[1], "--tiny") == 0;

  header("Batched group verification vs the sequential oracle",
         "the incremental-SAT tentpole; not a paper figure");

  DatasetOptions DO;
  DO.TrainCount = Tiny ? 6 : 24 * scale();
  DO.ValidCount = 0;
  DO.Seed = 2026;
  Dataset DS = buildDataset(DO);

  RobustVerifyOptions RVO;
  RVO.Base = PipelineOptions::trainVerifyDefaults();
  RVO.MaxTiers = 3;
  RVO.BudgetGrowth = 4;

  std::vector<std::vector<std::string>> Groups;
  for (const Sample &S : DS.Train)
    Groups.push_back(makeGroup(S));
  std::printf("%zu prompts x %u candidates, training verification budget, "
              "%u-tier ladder\n\n",
              DS.Train.size(), 8u, RVO.MaxTiers);

  // Sequential oracle: what the scoring path runs with batching off — a
  // cold fresh verification per candidate.
  std::vector<std::vector<VerdictKey>> SeqVerdicts(Groups.size());
  double SeqMs = wallMs([&] {
    for (size_t I = 0; I < Groups.size(); ++I) {
      const Sample &S = DS.Train[I];
      RobustVerifier RV(RVO);
      for (const std::string &T : Groups[I])
        SeqVerdicts[I].push_back(keyOf(RV.verify(S.SrcText, *S.source(), T).Result));
    }
  });

  MetricsRegistry &M = MetricsRegistry::global();
  Counter &Retained = M.counter("smt.clauses_retained");
  Counter &AssumpSolves = M.counter("smt.assumption_solves");
  Counter &CseHits = M.counter("encode.cse_hits");
  uint64_t Retained0 = Retained.value();
  uint64_t Assump0 = AssumpSolves.value();
  uint64_t Cse0 = CseHits.value();

  // Batched, single-threaded: the speedup here is pure reuse (shared source
  // half + canonical dedupe), no parallelism.
  auto runBatched = [&](unsigned Threads,
                        std::vector<std::vector<VerdictKey>> &Out) {
    Out.assign(Groups.size(), {});
    ThreadPool Pool(Threads);
    return wallMs([&] {
      for (size_t I = 0; I < Groups.size(); ++I) {
        const Sample &S = DS.Train[I];
        VerifyCache Cache(1024); // cold per group, like the oracle
        BatchVerifier::Options BO;
        BO.Robust = RVO;
        BO.Pool = Threads > 1 ? &Pool : nullptr;
        BO.Threads = Threads;
        BatchVerifier BV(BO, &Cache);
        for (const VerifyResult &R :
             BV.verifyGroup(S.SrcText, *S.source(), Groups[I]))
          Out[I].push_back(keyOf(R));
      }
    });
  };

  std::vector<std::vector<VerdictKey>> Batch1, Batch4;
  double Batch1Ms = runBatched(1, Batch1);
  uint64_t RetainedDelta = Retained.value() - Retained0;
  uint64_t AssumpDelta = AssumpSolves.value() - Assump0;
  uint64_t CseDelta = CseHits.value() - Cse0;
  double Batch4Ms = runBatched(4, Batch4);

  // The differential gate: any verdict-stream divergence is a correctness
  // bug, not a performance regression.
  unsigned Divergent = 0;
  for (size_t I = 0; I < Groups.size(); ++I)
    for (size_t J = 0; J < Groups[I].size(); ++J) {
      if (!(Batch1[I][J] == SeqVerdicts[I][J]))
        ++Divergent;
      if (!(Batch4[I][J] == SeqVerdicts[I][J]))
        ++Divergent;
    }

  double Speedup1 = Batch1Ms > 0 ? SeqMs / Batch1Ms : 0;
  double Speedup4 = Batch4Ms > 0 ? SeqMs / Batch4Ms : 0;
  size_t NQueries = Groups.size() * 8;
  std::printf("sequential oracle        %8.1f ms  (%zu verifications)\n",
              SeqMs, NQueries);
  std::printf("batched, 1 thread        %8.1f ms  (%.2fx)\n", Batch1Ms,
              Speedup1);
  std::printf("batched, 4 threads       %8.1f ms  (%.2fx)\n", Batch4Ms,
              Speedup4);
  std::printf("\nreuse: %llu clauses inherited, %llu assumption solves, "
              "%llu CSE hits (batched single-thread pass)\n",
              static_cast<unsigned long long>(RetainedDelta),
              static_cast<unsigned long long>(AssumpDelta),
              static_cast<unsigned long long>(CseDelta));
  std::printf("verdict streams: %s\n",
              Divergent ? "DIVERGED (correctness bug)" : "bit-identical");

  M.gauge("bench.seq_ms").set(SeqMs);
  M.gauge("bench.batch1_ms").set(Batch1Ms);
  M.gauge("bench.batch4_ms").set(Batch4Ms);
  M.gauge("bench.speedup_1t").set(Speedup1);
  M.gauge("bench.speedup_4t").set(Speedup4);
  M.gauge("bench.clauses_reused").set(static_cast<double>(RetainedDelta));
  M.gauge("bench.assumption_solves").set(static_cast<double>(AssumpDelta));
  M.gauge("bench.clauses_reused_per_solve")
      .set(AssumpDelta ? static_cast<double>(RetainedDelta) /
                             static_cast<double>(AssumpDelta)
                       : 0);
  M.gauge("bench.divergent_verdicts").set(Divergent);
  writeBenchJson("batch_verify");

  if (Divergent)
    return 1;
  // Tiny mode is the CI differential gate only; wall-clock on a loaded CI
  // box is not a meaningful speedup measurement.
  if (!Tiny && Speedup1 < 1.2 && Speedup4 < 1.5) {
    std::printf("SPEEDUP TARGET MISSED\n");
    return 1;
  }
  return 0;
}
