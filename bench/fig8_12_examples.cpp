//===- fig8_12_examples.cpp - Figs. 8-12: qualitative code examples --------===//
//
// Reproduces the paper's qualitative examples: cases where the emergent
// rewrites (mem2reg/simplifycfg-flavoured) beat the reference peephole pass
// (Figs. 8-10) and cases where a capacity-limited model misses patterns the
// reference pass implements (Figs. 11-12). Every transformation shown is
// checked by the Alive-lite validator before printing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "verify/AliveLite.h"

using namespace veriopt;

namespace {

void example(const char *Title, const char *Input,
             bool UseExtended /* veriopt-style emergent pipeline */) {
  std::printf("---- %s ----\n", Title);
  auto M = parseModule(Input);
  if (!M) {
    std::printf("  (parse error: %s)\n", M.error().render().c_str());
    return;
  }
  Function *Src = M.value()->getMainFunction();

  auto Ref = Src->clone();
  runReferencePipeline(*Ref);
  auto Emergent = Src->clone();
  if (UseExtended)
    runExtendedPipeline(*Emergent);
  else
    runReferencePipeline(*Emergent);

  auto VRef = verifyRefinement(*Src, *Ref);
  auto VEm = verifyRefinement(*Src, *Emergent);

  std::printf("input (-O0), latency %.0f:\n%s\n", estimateLatency(*Src),
              printFunction(*Src).c_str());
  std::printf("instcombine (verified: %s), latency %.0f:\n%s\n",
              VRef.equivalent() ? "yes" : "NO", estimateLatency(*Ref),
              printFunction(*Ref).c_str());
  std::printf("veriopt-style (verified: %s), latency %.0f:\n%s\n",
              VEm.equivalent() ? "yes" : "NO", estimateLatency(*Emergent),
              printFunction(*Emergent).c_str());
}

} // namespace

int main() {
  bench::header("Figs. 8-12 — qualitative examples (all Alive-verified)",
                "Figs. 8-12");

  // Fig. 8: two i32 stores of zero into an i64 slot, loaded back whole.
  // The GEP-split, size-mismatched stores block both instcombine's
  // forwarding AND our emergent pipeline (mem2reg refuses partial-access
  // allocas) — this reproduction's pass substrate does not synthesize the
  // paper's `ret i64 0` rewrite. The *validator* fully supports it: the
  // extra check below proves the paper's emergent answer equivalent, which
  // is the capability the paper's reward loop actually depends on.
  example("Fig. 8 — simplification to a constant", R"(
%struct.S = type { i32, i32 }
define i64 @get_d() {
  %1 = alloca i64, align 8
  %2 = bitcast i64* %1 to i32*
  store i32 0, i32* %2, align 8
  %3 = getelementptr inbounds %struct.S, %struct.S* %1, i64 0, i32 1
  store i32 0, i32* %3, align 4
  %4 = load i64, i64* %1, align 8
  ret i64 %4
}
)",
          true);
  {
    // The paper's emergent answer, proven by the validator.
    auto M = parseModule(R"(
%struct.S = type { i32, i32 }
define i64 @get_d() {
  %1 = alloca i64, align 8
  %2 = bitcast i64* %1 to i32*
  store i32 0, i32* %2, align 8
  %3 = getelementptr inbounds %struct.S, %struct.S* %1, i64 0, i32 1
  store i32 0, i32* %3, align 4
  %4 = load i64, i64* %1, align 8
  ret i64 %4
}
)");
    auto VR = verifyCandidateText(*M.value()->getMainFunction(),
                                  "define i64 @get_d() {\n  ret i64 0\n}\n");
    std::printf("the paper's emergent rewrite `ret i64 0`: Alive-lite says "
                "%s\n\n",
                VR.equivalent() ? "EQUIVALENT" : VR.Diagnostic.c_str());
  }

  // Fig. 9: redundant alloca/store/load traffic around a guarded call.
  example("Fig. 9 — removing redundant allocas, stores and loads", R"(
declare void @foo(i32)
define i64 @f28(i64 %0, i64 %1) {
  %3 = alloca i64, align 8
  %4 = add i64 %0, %1
  store i64 %4, i64* %3, align 8
  %5 = icmp ugt i64 %4, %0
  br i1 %5, label %good, label %bad
bad:
  call void @foo(i32 0)
  br label %good
good:
  %7 = load i64, i64* %3, align 8
  ret i64 %7
}
)",
          true);

  // Fig. 10: simplifycfg-style diamond-to-select emergence.
  example("Fig. 10 — emergent simplifycfg-style behaviour", R"(
define i32 @opt_u1(i32 %0) {
  %2 = alloca i32, align 4
  store i32 %0, i32* %2, align 4
  %3 = icmp ult i32 %0, 10
  br i1 %3, label %4, label %5
4:
  br label %10
5:
  %6 = load i32, i32* %2, align 4
  %7 = add i32 %6, -12
  %8 = lshr i32 %7, 2
  %9 = add i32 %8, 3
  br label %10
10:
  %storemerge = phi i32 [ %9, %5 ], [ 0, %4 ]
  ret i32 %storemerge
}
)",
          true);

  // Fig. 11: a capacity-limited model misses the lshr+trunc+add pattern
  // instcombine gets; we show the reference result and what a model that
  // lacks the Shift family would produce (nothing).
  std::printf("---- Fig. 11 — the reference pass spots a superior "
              "simplification a small model misses ----\n");
  {
    const char *Input = R"(
define i32 @f8(i64 %0) {
  %2 = lshr i64 %0, 61
  %3 = trunc i64 %2 to i32
  %4 = shl i32 %3, 2
  %5 = lshr i32 %4, 2
  %6 = add i32 %5, 1
  ret i32 %6
}
)";
    auto M = parseModule(Input);
    Function *Src = M.value()->getMainFunction();
    auto Full = Src->clone();
    runReferencePipeline(*Full);
    // Capacity-limited model: no Shift family.
    PassManager Limited;
    Limited.add(createInstCombinePass(AllRuleCats &
                                      ~ruleCatBit(RuleCat::Shift)));
    auto Partial = Src->clone();
    Limited.runToFixpoint(*Partial);
    std::printf("input latency %.0f | instcombine %.0f | shift-blind model "
                "%.0f (both verified: %s/%s)\n",
                estimateLatency(*Src), estimateLatency(*Full),
                estimateLatency(*Partial),
                verifyRefinement(*Src, *Full).equivalent() ? "yes" : "NO",
                verifyRefinement(*Src, *Partial).equivalent() ? "yes" : "NO");
    std::printf("instcombine:\n%sshift-blind:\n%s\n",
                printFunction(*Full).c_str(),
                printFunction(*Partial).c_str());
  }

  // Fig. 12: full precalculation — constant folding collapses everything;
  // a constfold-blind model returns the input unchanged.
  std::printf("---- Fig. 12 — the reference pass fully precalculates ----\n");
  {
    const char *Input = R"(
define i32 @aqua_baldo() {
  %1 = mul i32 -53, 3
  %2 = add i32 %1, 0
  ret i32 %2
}
)";
    auto M = parseModule(Input);
    Function *Src = M.value()->getMainFunction();
    auto Full = Src->clone();
    runReferencePipeline(*Full);
    std::printf("instcombine result (verified: %s):\n%s\n",
                verifyRefinement(*Src, *Full).equivalent() ? "yes" : "NO",
                printFunction(*Full).c_str());
  }
  return 0;
}
