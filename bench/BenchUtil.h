//===- BenchUtil.h - Shared configuration for the table/figure benches -----===//
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic corpus. They share the dataset/pipeline configuration here so
// rows are comparable across binaries. Scale can be adjusted with the
// VERIOPT_BENCH_SCALE environment variable (default 1; 2 doubles corpus
// sizes and training budgets).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_BENCH_BENCHUTIL_H
#define VERIOPT_BENCH_BENCHUTIL_H

#include "pipeline/Evaluation.h"
#include "pipeline/Pipeline.h"
#include "report/BenchJson.h"
#include "trace/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace veriopt {
namespace bench {

inline unsigned scale() {
  const char *S = std::getenv("VERIOPT_BENCH_SCALE");
  if (!S)
    return 1;
  int V = std::atoi(S);
  return V > 0 ? static_cast<unsigned>(V) : 1;
}

inline DatasetOptions benchDataset() {
  DatasetOptions D;
  D.TrainCount = 60 * scale();
  D.ValidCount = 100 * scale();
  D.Seed = 2026;
  return D;
}

inline PipelineOptions benchPipeline() {
  PipelineOptions P;
  P.Data = benchDataset();
  P.Stage1Steps = 50 * scale();
  P.Stage2Steps = 80 * scale();
  P.Stage3Steps = 200 * scale();
  return P;
}

inline void header(const char *Title, const char *PaperRef) {
  std::printf("==============================================================="
              "=\n%s\n(reproduces %s; shape comparison, not absolute "
              "numbers)\n"
              "==============================================================="
              "=\n",
              Title, PaperRef);
}

inline void taxonomyRow(const char *Name, const VerifyTaxonomy &T) {
  std::printf("%-34s %5u  %5.1f%%\n", Name, T.Total, 100.0);
  std::printf("  Correct (Alive-lite verified)    %5u  %5.1f%%\n", T.Correct,
              T.pct(T.Correct));
  std::printf("  - Copy of input (no optimization)%5u  %5.1f%%\n",
              T.CorrectCopies, T.pct(T.CorrectCopies));
  std::printf("  Semantic Error (Not Equivalent)  %5u  %5.1f%%\n",
              T.SemanticError, T.pct(T.SemanticError));
  std::printf("  Syntax Error (Invalid IR)        %5u  %5.1f%%\n",
              T.SyntaxError, T.pct(T.SyntaxError));
  std::printf("  Inconclusive                     %5u  %5.1f%%\n",
              T.Inconclusive, T.pct(T.Inconclusive));
  std::printf("  => different-and-correct rate:   %5.1f%%\n",
              T.differentCorrectRate());
}

/// Write the shared machine-readable result file, `BENCH_<name>.json` in
/// the working directory. Every bench emits the same schema — the
/// process-wide MetricsRegistry snapshot under "metrics", with
/// bench-specific headline numbers published as `bench.*` gauges — so
/// multi-run comparison tooling never needs per-binary parsers. The schema
/// (and its versioning) is owned by src/report/BenchJson.h, which is also
/// the validator behind `report --bench-diff`; emitting through it keeps
/// writer and checker from drifting.
inline bool writeBenchJson(const std::string &Name) {
  const std::string Path = "BENCH_" + Name + ".json";
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return false;
  OS << benchReportToJson(Name, MetricsRegistry::global().snapshot());
  OS.flush();
  if (OS)
    std::printf("\nwrote %s\n", Path.c_str());
  return static_cast<bool>(OS);
}

} // namespace bench
} // namespace veriopt

#endif // VERIOPT_BENCH_BENCHUTIL_H
