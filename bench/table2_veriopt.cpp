//===- table2_veriopt.cpp - Table II: trained-model verification taxonomy --===//
//
// Paper Table II: Alive2 verification of MODEL-CORRECTNESS and
// MODEL-LATENCY. Expected shape: ~90% verified with almost no trivial
// copies, small residual semantic/syntax bands, and the latency stage
// holding (not losing) correctness.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

int main() {
  bench::header("Table II — Alive verification of the LLM-VeriOpt models",
                "Table II");

  Dataset DS = buildDataset(bench::benchDataset());
  std::printf("training pipeline on %zu functions, evaluating on %zu...\n\n",
              DS.Train.size(), DS.Valid.size());
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());

  EvalResult Corr =
      evaluateModel(*Art.Correctness, DS.Valid, PromptMode::Augmented);
  EvalResult Lat = evaluateModel(*Art.Latency, DS.Valid, PromptMode::Generic);

  bench::taxonomyRow("MODEL-CORRECTNESS", Corr.Taxonomy);
  std::printf("\n");
  bench::taxonomyRow("MODEL-LATENCY", Lat.Taxonomy);

  std::printf("\npaper reference: correctness 89.5%% correct (1.4%% copies), "
              "latency 89.9%% correct (1.5%% copies)\n");
  double Improvement = Lat.Taxonomy.differentCorrectRate() / 16.4;
  std::printf("different-correct improvement over the paper's baseline "
              "figure of 16.4%%: %.1fx (paper: 5.4x over their baseline)\n",
              Improvement);
  std::printf("latency stage keeps correctness within %.1f points of the "
              "correctness stage\n",
              Corr.Taxonomy.pct(Corr.Taxonomy.Correct) -
                  Lat.Taxonomy.pct(Lat.Taxonomy.Correct));
  return 0;
}
