//===- sharded_eval.cpp - Serial vs sharded evaluation ---------------------===//
//
// Measures the sharded-evaluation tentpole on the bench's standard
// validation corpus, two ways:
//
//  1. Differential gate: evaluateModelSharded() must be bit-identical to
//     the serial oracle evaluateModel() at every shard/thread configuration,
//     with BatchVerify on or off, and every shard must survive a JSON
//     round-trip and still merge to the oracle. Exits nonzero on any
//     divergence, so CI runs `--tiny` as a cheap correctness gate.
//
//  2. Wall clock on the standard workload: evaluation is not a single pass
//     in practice — the pipeline re-evaluates the same corpus at every
//     checkpoint cadence and once per ablation table row, re-verifying
//     mostly unchanged (source, candidate) pairs. The sharded path spreads
//     shards over the worker pool AND replays repeat verdicts from a
//     shared VerifyCache; the serial oracle re-verifies from scratch every
//     time. The ≥1.5x target (skipped in --tiny) is measured on this
//     repeated-evaluation workload.
//
// Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Tiny = Argc > 1 && std::strcmp(Argv[1], "--tiny") == 0;

  header("Sharded evaluation vs the serial oracle",
         "the evaluation-scaling tentpole; not a paper figure");

  DatasetOptions DO = benchDataset();
  DO.TrainCount = 0;
  if (Tiny)
    DO.ValidCount = 12;
  Dataset DS = buildDataset(DO);
  RewritePolicyModel Base(presetQwen3B());

  // The ablation tables re-evaluate each checkpoint once per row/figure;
  // train_mini's final table alone evaluates one model twice, and the
  // paper's figure set asks for five passes over the same checkpoint.
  const unsigned Evals = Tiny ? 2 : 5;
  const unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  // Tiny mode feeds the committed bench-regression baselines: the thread
  // count shows up in BENCH json (bench.threads, and through it the shard
  // layout), so it must not vary with the machine CI lands on.
  const unsigned Threads = Tiny ? 2 : std::min(4u, HW);
  std::printf("%zu validation samples, base policy, greedy decoding, "
              "workload = %u successive evaluations, %u worker threads\n\n",
              DS.Valid.size(), Evals, Threads);

  // Serial oracle: the unsharded evaluateModel() walk, once per
  // evaluation, cold each time (it has no cache to carry).
  EvalResult Oracle;
  double SerialMs = wallMs([&] {
    for (unsigned E = 0; E < Evals; ++E)
      Oracle = evaluateModel(Base, DS.Valid, PromptMode::Generic);
  });

  unsigned Divergent = 0;

  // The measured configuration: shards across the pool, one shared verify
  // cache carried across evaluations. Every per-eval result must still be
  // bit-identical to the oracle.
  double ShardedMs;
  {
    ThreadPool Pool(Threads);
    VerifyCache Shared(0); // unbounded; keys carry the full budget
    EvalOptions EO;
    EO.Shards = 2 * Threads;
    EO.Pool = &Pool;
    EO.BatchVerify = true;
    EO.SharedCache = &Shared;
    ShardedMs = wallMs([&] {
      for (unsigned E = 0; E < Evals; ++E) {
        EvalResult R = evaluateModelSharded(Base, DS.Valid,
                                            PromptMode::Generic,
                                            VerifyOptions(), EO);
        Divergent += countResultDivergence(Oracle, R);
      }
    });
  }

  double Speedup = ShardedMs > 0 ? SerialMs / ShardedMs : 0;
  std::printf("serial oracle  x%u                %8.1f ms\n", Evals,
              SerialMs);
  std::printf("sharded + shared cache x%u       %8.1f ms  (%.2fx)%s\n",
              Evals, ShardedMs, Speedup, Divergent ? "  DIVERGED" : "");

  // Differential sweep (untimed): single cold evaluations across shard
  // counts and thread counts, batch verification on and off.
  struct Config {
    const char *Label;
    unsigned Shards, Threads;
    bool Batch;
  };
  const std::vector<Config> Configs = {
      {"1 shard, 1 thread", 1, 1, true},
      {"3 shards, 1 thread", 3, 1, true},
      {"8 shards, 4 threads", 8, 4, true},
      {"8 shards, 4 threads, no batch", 8, 4, false},
  };
  for (const Config &C : Configs) {
    ThreadPool Pool(C.Threads);
    EvalOptions EO;
    EO.Shards = C.Shards;
    EO.Pool = &Pool;
    EO.BatchVerify = C.Batch;
    EvalResult R = evaluateModelSharded(Base, DS.Valid, PromptMode::Generic,
                                        VerifyOptions(), EO);
    unsigned D = countResultDivergence(Oracle, R);
    Divergent += D;
    std::printf("%-32s %s\n", C.Label,
                D ? "DIVERGED" : "bit-identical");
  }

  // The serialization half of the work-unit contract: every shard must
  // round-trip through JSON and still merge to the oracle bit for bit.
  {
    auto Plan = planEvalShards(DS.Valid.size(), 4, 0xE7A1);
    std::vector<ShardEvalResult> Shards;
    for (const EvalShard &S : Plan) {
      ShardEvalResult R = evaluateEvalShard(Base, DS.Valid,
                                            PromptMode::Generic,
                                            VerifyOptions(), S);
      ShardEvalResult Back;
      std::string Err;
      if (!shardResultFromJson(shardResultToJson(R), Back, &Err)) {
        std::printf("shard JSON round-trip FAILED: %s\n", Err.c_str());
        ++Divergent;
        break;
      }
      Shards.push_back(std::move(Back));
    }
    if (Shards.size() == 4) {
      unsigned D = countResultDivergence(
          Oracle, mergeShardResults(Base.config().Name, std::move(Shards)));
      Divergent += D;
      std::printf("JSON round-trip + merge          %s\n",
                  D ? "DIVERGED" : "bit-identical");
    }
  }

  std::printf("\nresults: %s; repeated-eval speedup %.2fx\n",
              Divergent ? "DIVERGED (correctness bug)" : "bit-identical",
              Speedup);

  MetricsRegistry &M = MetricsRegistry::global();
  M.gauge("bench.serial_ms").set(SerialMs);
  M.gauge("bench.sharded_ms").set(ShardedMs);
  M.gauge("bench.evals").set(Evals);
  M.gauge("bench.threads").set(Threads);
  M.gauge("bench.speedup").set(Speedup);
  M.gauge("bench.divergent_fields").set(Divergent);
  writeBenchJson("sharded_eval");

  if (Divergent)
    return 1;
  // Tiny mode is the CI differential gate only; wall-clock on a loaded CI
  // box is not a meaningful speedup measurement.
  if (!Tiny && Speedup < 1.5) {
    std::printf("SPEEDUP TARGET MISSED\n");
    return 1;
  }
  return 0;
}
