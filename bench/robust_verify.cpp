//===- robust_verify.cpp - Escalating retry ladder on hard candidates ------===//
//
// Measures the fault-tolerant-runtime tentpole: on a crafted set of
// solver-hard and fuel-hungry candidates, an escalating budget ladder
// (tier-k budget = base * growth^k) turns terminal Inconclusives into
// definitive verdicts, at a bounded extra cost — cheap queries still pay
// only the tier-0 budget. Compares a single-tier verifier against 2- and
// 3-tier ladders under identical base budgets. Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "verify/RobustVerifier.h"

#include "ir/Parser.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

struct HardCase {
  const char *Name;
  std::string Src, Tgt;
};

std::string mulByThree(const char *Ty) {
  std::string T(Ty);
  return "define " + T + " @f(" + T + " %x) {\n  %m = mul " + T +
         " %x, 3\n  ret " + T + " %m\n}\n";
}

std::string addChainTimesThree(const char *Ty) {
  std::string T(Ty);
  return "define " + T + " @f(" + T + " %x) {\n  %a = add " + T +
         " %x, %x\n  %b = add " + T + " %a, %x\n  ret " + T + " %b\n}\n";
}

std::string mulCommut(const char *Ty, bool Swap) {
  std::string T(Ty);
  return "define " + T + " @f(" + T + " %x, " + T + " %y) {\n  %m = mul " +
         T + (Swap ? " %y, %x" : " %x, %y") + "\n  ret " + T + " %m\n}\n";
}

std::string longIdentity(unsigned N) {
  std::string S = "define i32 @f(i32 %x) {\n  %v0 = add i32 %x, 1\n";
  for (unsigned I = 1; I < N; ++I)
    S += "  %v" + std::to_string(I) + " = add i32 %v" + std::to_string(I - 1) +
         ", 1\n";
  S += "  ret i32 %v" + std::to_string(N - 1) + "\n}\n";
  return S;
}

std::vector<HardCase> hardSet() {
  std::vector<HardCase> Set;
  for (const char *Ty : {"i8", "i16", "i32"}) {
    Set.push_back({"mul3-vs-adds", mulByThree(Ty), addChainTimesThree(Ty)});
    Set.push_back({"mul-commut", mulCommut(Ty, false), mulCommut(Ty, true)});
  }
  // sdiv-by-2 vs ashr-by-1: NotEquivalent, but the counterexample (an odd
  // negative) takes real CDCL search to find with falsification disabled.
  for (const char *Ty : {"i8", "i32"}) {
    std::string T(Ty);
    Set.push_back({"sdiv-vs-ashr",
                   "define " + T + " @f(" + T + " %x) {\n  %y = sdiv " + T +
                       " %x, 2\n  ret " + T + " %y\n}\n",
                   "define " + T + " @f(" + T + " %x) {\n  %y = ashr " + T +
                       " %x, 1\n  ret " + T + " %y\n}\n"});
  }
  // Fuel pressure rather than conflict pressure: a long straight-line
  // function whose falsification + encoding alone outruns a small tank.
  Set.push_back({"long-identity", longIdentity(120), longIdentity(120)});
  // Control: trivial identity must stay a tier-0 verdict in every config.
  Set.push_back({"easy-identity", mulByThree("i32"), mulByThree("i32")});
  return Set;
}

struct LadderStats {
  unsigned Definitive = 0;
  unsigned TerminalInconclusive = 0;
  unsigned Escalated = 0;
  unsigned Rescued = 0;
  uint64_t Conflicts = 0;
  uint64_t Fuel = 0;
};

LadderStats runLadder(const std::vector<HardCase> &Set, unsigned MaxTiers,
                      uint64_t Growth) {
  RobustVerifyOptions O;
  O.Base.FalsifyTrials = 0;        // force the SMT path
  O.Base.SolverConflictBudget = 60; // deliberately starved tier 0
  O.Base.FuelBudget = 3000;
  O.MaxTiers = MaxTiers;
  O.BudgetGrowth = Growth;
  RobustVerifier RV(O);

  LadderStats S;
  for (const HardCase &C : Set) {
    auto M = parseModule(C.Src);
    auto Out = RV.verify(C.Src, *M.value()->getMainFunction(), C.Tgt);
    if (Out.Result.Status == VerifyStatus::Equivalent ||
        Out.Result.Status == VerifyStatus::NotEquivalent)
      ++S.Definitive;
    S.Conflicts += Out.Result.SolverConflicts;
    S.Fuel += Out.Result.FuelSpent;
  }
  auto C = RV.counters();
  S.TerminalInconclusive = static_cast<unsigned>(C.TerminalInconclusive);
  S.Escalated = static_cast<unsigned>(C.Escalations);
  S.Rescued = static_cast<unsigned>(C.Rescued);
  return S;
}

void row(const char *Name, const LadderStats &S, size_t N) {
  std::printf("%-24s definitive %2u/%zu   terminal-inconclusive %2u   "
              "escalated %2u   rescued %2u   conflicts %7llu   fuel %9llu\n",
              Name, S.Definitive, N, S.TerminalInconclusive, S.Escalated,
              S.Rescued, static_cast<unsigned long long>(S.Conflicts),
              static_cast<unsigned long long>(S.Fuel));
}

} // namespace

int main() {
  header("Escalating verification retry ladder on a hard-candidate set",
         "the fault-tolerant-runtime tentpole; not a paper figure");

  std::vector<HardCase> Set = hardSet();
  std::printf("%zu crafted candidates; base budgets: 60 conflicts, 3000 fuel,"
              " growth 16x per tier\n\n",
              Set.size());

  LadderStats T1 = runLadder(Set, /*MaxTiers=*/1, /*Growth=*/16);
  LadderStats T2 = runLadder(Set, /*MaxTiers=*/2, /*Growth=*/16);
  LadderStats T3 = runLadder(Set, /*MaxTiers=*/3, /*Growth=*/16);

  row("1 tier (no retries)", T1, Set.size());
  row("2 tiers", T2, Set.size());
  row("3 tiers", T3, Set.size());

  bool Improved = T3.TerminalInconclusive < T1.TerminalInconclusive &&
                  T3.Definitive > T1.Definitive;
  std::printf("\nladder reduces terminal Inconclusive (%u -> %u) and lifts "
              "definitive verdicts (%u -> %u): %s\n",
              T1.TerminalInconclusive, T3.TerminalInconclusive, T1.Definitive,
              T3.Definitive, Improved ? "OK" : "VIOLATED");

  // Headline numbers, published into the shared BENCH_*.json schema.
  MetricsRegistry &M = MetricsRegistry::global();
  auto publish = [&](const char *Key, const LadderStats &S) {
    M.gauge(std::string("bench.definitive.") + Key).set(S.Definitive);
    M.gauge(std::string("bench.terminal_inconclusive.") + Key)
        .set(S.TerminalInconclusive);
    M.gauge(std::string("bench.rescued.") + Key).set(S.Rescued);
    M.gauge(std::string("bench.conflicts.") + Key)
        .set(static_cast<double>(S.Conflicts));
    M.gauge(std::string("bench.fuel.") + Key).set(static_cast<double>(S.Fuel));
  };
  publish("tiers1", T1);
  publish("tiers2", T2);
  publish("tiers3", T3);
  M.gauge("bench.ladder_improved").set(Improved ? 1 : 0);
  writeBenchJson("robust_verify");
  return Improved ? 0 : 1;
}
