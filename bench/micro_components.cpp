//===- micro_components.cpp - Component microbenchmarks --------------------===//
//
// google-benchmark timings for the substrate components: parser, printer,
// reference/extended pipelines, interpreter, SAT solver, and the Alive-lite
// validator — including the falsify-before-prove ablation DESIGN.md calls
// out (random concrete refutation vs full SMT on inequivalent pairs).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "data/Dataset.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "smt/Sat.h"
#include "smt/Solver.h"
#include "verify/AliveLite.h"

using namespace veriopt;

namespace {

const Dataset &corpus() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 24;
    O.ValidCount = 0;
    O.Seed = 1234;
    return buildDataset(O);
  }();
  return DS;
}

void BM_ParseFunction(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  for (auto _ : State) {
    auto M = parseModule(S.SrcText);
    benchmark::DoNotOptimize(M.hasValue());
  }
}
BENCHMARK(BM_ParseFunction);

void BM_PrintFunction(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  for (auto _ : State) {
    std::string Text = printFunction(*S.source());
    benchmark::DoNotOptimize(Text.data());
  }
}
BENCHMARK(BM_PrintFunction);

void BM_InstCombine(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  for (auto _ : State) {
    auto F = S.source()->clone();
    runReferencePipeline(*F);
    benchmark::DoNotOptimize(F->instructionCount());
  }
}
BENCHMARK(BM_InstCombine);

void BM_ExtendedPipeline(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  for (auto _ : State) {
    auto F = S.source()->clone();
    runExtendedPipeline(*F);
    benchmark::DoNotOptimize(F->instructionCount());
  }
}
BENCHMARK(BM_ExtendedPipeline);

void BM_Interpret(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  std::vector<APInt64> Args;
  for (unsigned I = 0; I < S.source()->getNumParams(); ++I)
    Args.push_back(APInt64(S.source()->getParamType(I)->getBitWidth(),
                           0x1234 + I));
  for (auto _ : State) {
    auto R = interpret(*S.source(), Args);
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_Interpret);

void BM_SatPigeonhole(benchmark::State &State) {
  // PHP(6,5): a nontrivial UNSAT instance.
  for (auto _ : State) {
    SatSolver S;
    const int N = 6, H = 5;
    std::vector<std::vector<unsigned>> P(N, std::vector<unsigned>(H));
    for (auto &Row : P)
      for (unsigned &V : Row)
        V = S.newVar();
    for (int I = 0; I < N; ++I) {
      std::vector<Lit> Cl;
      for (int K = 0; K < H; ++K)
        Cl.push_back(Lit(P[I][K], false));
      S.addClause(Cl);
    }
    for (int K = 0; K < H; ++K)
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; ++J)
          S.addClause(Lit(P[I][K], true), Lit(P[J][K], true));
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPigeonhole);

void BM_BVProveIdentity(benchmark::State &State) {
  // Prove (x+y)-y == x at 32 bits: blast + UNSAT each iteration.
  for (auto _ : State) {
    BVContext C;
    const BVExpr *X = C.var(32, "x");
    const BVExpr *Y = C.var(32, "y");
    auto R = checkSat(C, C.ne(C.sub(C.add(X, Y), Y), X));
    benchmark::DoNotOptimize(R.St);
  }
}
BENCHMARK(BM_BVProveIdentity);

void BM_VerifyEquivalentPair(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  for (auto _ : State) {
    auto R = verifyRefinement(*S.source(), *S.Reference);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_VerifyEquivalentPair);

/// Ablation: inequivalent pair with and without the falsification pre-pass.
void BM_RefuteWithFalsify(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  auto Broken = S.Reference->clone();
  // Introduce a semantic bug: flip the first icmp (or perturb a constant).
  for (auto &BB : *Broken)
    for (auto &I : *BB)
      if (auto *C = dyn_cast<ICmpInst>(I.get())) {
        C->setPredicate(invertedPred(C->getPredicate()));
        goto done;
      }
done:
  VerifyOptions Opts; // falsify on (default)
  for (auto _ : State) {
    auto R = verifyRefinement(*S.source(), *Broken, Opts);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_RefuteWithFalsify);

void BM_RefuteWithoutFalsify(benchmark::State &State) {
  const Sample &S = corpus().Train.front();
  auto Broken = S.Reference->clone();
  for (auto &BB : *Broken)
    for (auto &I : *BB)
      if (auto *C = dyn_cast<ICmpInst>(I.get())) {
        C->setPredicate(invertedPred(C->getPredicate()));
        goto done;
      }
done:
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0; // force the SMT path
  for (auto _ : State) {
    auto R = verifyRefinement(*S.source(), *Broken, Opts);
    benchmark::DoNotOptimize(R.Status);
  }
}
BENCHMARK(BM_RefuteWithoutFalsify);

void BM_DatasetSample(benchmark::State &State) {
  DatasetOptions O;
  uint64_t Seed = 999;
  for (auto _ : State) {
    auto S = buildSample(Seed++, "bench", O);
    benchmark::DoNotOptimize(S.get());
  }
}
BENCHMARK(BM_DatasetSample);

} // namespace

BENCHMARK_MAIN();
