//===- verdict_store.cpp - Cold vs warm persistent verdict replay ----------===//
//
// Measures the VerdictStore tentpole on the bench's standard validation
// corpus, two ways:
//
//  1. Differential gate: evaluation against a cold store, against a warm
//     (reopened) store, and with no store at all must be bit-identical to
//     the serial oracle evaluateModel() at every shard/thread
//     configuration. Exits nonzero on any divergence, so CI runs `--tiny`
//     as a cheap correctness gate.
//
//  2. Wall clock on the repeated-run workload: the pipeline re-evaluates
//     the same corpus once per checkpoint cadence, ablation row, and fleet
//     restart — each a *fresh process* whose in-memory VerifyCache starts
//     empty. Without a store every run re-verifies from scratch; with one,
//     every run after the first replays journaled verdicts. Each timed
//     pass therefore uses a fresh private cache (simulating a new process)
//     and only the journal carries state across passes. The ≥1.5x target
//     (skipped in --tiny) compares N store-less runs to N warm-store runs.
//
// Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "store/VerdictStore.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

struct ScratchJournal {
  std::string Path;
  ScratchJournal() {
    const char *T = std::getenv("TMPDIR");
    Path = std::string(T ? T : "/tmp") + "/veriopt_bench_store_" +
           std::to_string(::getpid()) + ".journal";
    cleanup();
  }
  ~ScratchJournal() { cleanup(); }
  void cleanup() {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
};

} // namespace

int main(int Argc, char **Argv) {
  const bool Tiny = Argc > 1 && std::strcmp(Argv[1], "--tiny") == 0;

  header("Persistent verdict store: store-less vs warm replay",
         "the persistence tentpole; not a paper figure");

  DatasetOptions DO = benchDataset();
  DO.TrainCount = 0;
  if (Tiny)
    DO.ValidCount = 12;
  Dataset DS = buildDataset(DO);
  RewritePolicyModel Base(presetQwen3B());

  const unsigned Evals = Tiny ? 2 : 5;
  const unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  // Tiny mode feeds the committed bench-regression baselines: the thread
  // count shows up in BENCH json, so it must not vary with the machine CI
  // lands on.
  const unsigned Threads = Tiny ? 2 : std::min(4u, HW);
  std::printf("%zu validation samples, base policy, greedy decoding, "
              "workload = %u independent evaluation runs, %u worker "
              "threads\n\n",
              DS.Valid.size(), Evals, Threads);

  // Serial reference for every bit-identity check below.
  EvalResult Oracle = evaluateModel(Base, DS.Valid, PromptMode::Generic);

  ScratchJournal Journal;
  ThreadPool Pool(Threads);
  unsigned Divergent = 0;

  auto runOnce = [&](VerdictBackingTier *Tier) {
    // Fresh private VerifyCache per call: each timed pass models a fresh
    // process, so only the journal may carry verdicts between passes.
    EvalOptions EO;
    EO.Shards = 2 * Threads;
    EO.Pool = &Pool;
    EO.VerdictTier = Tier;
    EvalResult R = evaluateModelSharded(Base, DS.Valid, PromptMode::Generic,
                                        VerifyOptions(), EO);
    Divergent += countResultDivergence(Oracle, R);
  };

  // Arm 1: no store. Every run re-verifies the whole corpus from scratch.
  double NoStoreMs = wallMs([&] {
    for (unsigned E = 0; E < Evals; ++E)
      runOnce(nullptr);
  });

  // Arm 2: the cold run — the one process that pays verification once and
  // journals every deterministic verdict on the way out.
  uint64_t ColdWrites = 0, LiveAfterCold = 0;
  double ColdMs = wallMs([&] {
    std::string Err;
    std::unique_ptr<VerdictStore> Store = VerdictStore::open(Journal.Path,
                                                             &Err);
    if (!Store) {
      std::printf("store open FAILED: %s\n", Err.c_str());
      ++Divergent;
      return;
    }
    runOnce(Store.get());
    if (!Store->flush(&Err)) {
      std::printf("store flush FAILED: %s\n", Err.c_str());
      ++Divergent;
    }
    ColdWrites = Store->stats().Writes;
    LiveAfterCold = Store->size();
  });

  // Arm 3: warm replay — every subsequent run reopens the journal and
  // serves verification from it instead of the solver.
  uint64_t WarmHits = 0, WarmMisses = 0, Quarantined = 0;
  double WarmMs = wallMs([&] {
    std::string Err;
    std::unique_ptr<VerdictStore> Store = VerdictStore::open(Journal.Path,
                                                             &Err);
    if (!Store) {
      std::printf("store reopen FAILED: %s\n", Err.c_str());
      ++Divergent;
      return;
    }
    for (unsigned E = 0; E < Evals; ++E)
      runOnce(Store.get());
    VerdictStore::Stats St = Store->stats();
    WarmHits = St.Hits;
    WarmMisses = St.Misses;
    Quarantined = St.Quarantined;
  });

  double Speedup = WarmMs > 0 ? NoStoreMs / WarmMs : 0;
  std::printf("no store          x%u             %8.1f ms\n", Evals,
              NoStoreMs);
  std::printf("cold store        x1             %8.1f ms  (%llu verdicts "
              "journaled)\n",
              ColdMs, static_cast<unsigned long long>(ColdWrites));
  std::printf("warm store        x%u             %8.1f ms  (%.2fx, %llu "
              "hits / %llu misses)%s\n",
              Evals, WarmMs, Speedup,
              static_cast<unsigned long long>(WarmHits),
              static_cast<unsigned long long>(WarmMisses),
              Divergent ? "  DIVERGED" : "");

  // The warm arm replaying nothing would silently degrade into Arm 1; that
  // is a correctness bug in the store, not a slow machine.
  if (WarmHits == 0) {
    std::printf("warm store served ZERO hits\n");
    ++Divergent;
  }

  // Differential sweep (untimed): warm-store evaluations across shard and
  // thread configurations, each bit-identical to the serial oracle. The
  // no-batch row checks the documented fallback: without BatchVerify the
  // tier is ignored and the run still matches the oracle.
  struct Config {
    const char *Label;
    unsigned Shards, Threads;
    bool Batch;
  };
  const std::vector<Config> Configs = {
      {"warm, 1 shard, 1 thread", 1, 1, true},
      {"warm, 3 shards, 1 thread", 3, 1, true},
      {"warm, 8 shards, 4 threads", 8, 4, true},
      {"warm, 8 shards, 4 threads, no batch", 8, 4, false},
  };
  {
    std::string Err;
    std::unique_ptr<VerdictStore> Store = VerdictStore::open(Journal.Path,
                                                             &Err);
    if (!Store) {
      std::printf("store reopen FAILED: %s\n", Err.c_str());
      ++Divergent;
    }
    for (const Config &C : Configs) {
      ThreadPool P(C.Threads);
      EvalOptions EO;
      EO.Shards = C.Shards;
      EO.Pool = &P;
      EO.BatchVerify = C.Batch;
      EO.VerdictTier = Store ? Store.get() : nullptr;
      EvalResult R = evaluateModelSharded(Base, DS.Valid,
                                          PromptMode::Generic,
                                          VerifyOptions(), EO);
      unsigned D = countResultDivergence(Oracle, R);
      Divergent += D;
      std::printf("%-38s %s\n", C.Label, D ? "DIVERGED" : "bit-identical");
    }
  }

  std::printf("\nresults: %s; repeated-run warm speedup %.2fx\n",
              Divergent ? "DIVERGED (correctness bug)" : "bit-identical",
              Speedup);

  MetricsRegistry &M = MetricsRegistry::global();
  M.gauge("bench.nostore_ms").set(NoStoreMs);
  M.gauge("bench.cold_ms").set(ColdMs);
  M.gauge("bench.warm_ms").set(WarmMs);
  M.gauge("bench.evals").set(Evals);
  M.gauge("bench.threads").set(Threads);
  M.gauge("bench.speedup").set(Speedup);
  M.gauge("bench.store_records").set(LiveAfterCold);
  M.gauge("bench.store_quarantined").set(Quarantined);
  M.gauge("bench.divergent_fields").set(Divergent);
  writeBenchJson("verdict_store");

  if (Divergent)
    return 1;
  // Tiny mode is the CI differential gate only; wall-clock on a loaded CI
  // box is not a meaningful speedup measurement.
  if (!Tiny && Speedup < 1.5) {
    std::printf("SPEEDUP TARGET MISSED\n");
    return 1;
  }
  return 0;
}
