//===- table1_baseline.cpp - Table I: base-model verification taxonomy -----===//
//
// Paper Table I: Alive2 verification results of baseline Qwen-3B with the
// generic prompt and greedy decoding. Expected shape: ~73% verified, the
// majority of which are trivial copies; ~21% syntax errors; a small
// semantic-error band; different-and-correct ~16%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

int main() {
  bench::header("Table I — Alive verification of the baseline model",
                "Table I");

  auto DSOpts = bench::benchDataset();
  DSOpts.TrainCount = 0; // evaluation only
  Dataset DS = buildDataset(DSOpts);
  std::printf("validation functions: %zu (paper: 4,386; scaled corpus)\n\n",
              DS.Valid.size());

  RewritePolicyModel Base(presetQwen3B());
  EvalResult E = evaluateModel(Base, DS.Valid, PromptMode::Generic);
  bench::taxonomyRow("baseline qwen-3b (greedy)", E.Taxonomy);

  std::printf("\npaper reference: correct 73.2%% (copies 56.8%%), semantic "
              "4.2%%, syntax 21.1%%, inconclusive 1.5%%, "
              "different-correct 16.4%%\n");
  std::printf("geomean speedup vs -O0: %.3fx (paper: ~1.002x)\n",
              E.GeoSpeedupVsO0);
  return 0;
}
