//===- table3_metrics.cpp - Table III: per-sample outcomes vs -O0 ----------===//
//
// Paper Table III: per-sample Better/Worse/Tie counts against LLVM -O0
// (with -O0 fallback on verification failure) and the mean relative change
// for Latency / Size / ICount, for MODEL-LATENCY, MODEL-CORRECTNESS, and
// the raw base model. Expected shape: the trained models improve the vast
// majority of samples with large negative mean changes; the base model is
// almost all ties with ~0% change.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

namespace {

void row(const char *Metric, const char *Model, const MetricAgg &A,
         unsigned Total) {
  std::printf("%-8s %-12s %6u %6u %6u %6u   %+7.2f%%\n", Metric, Model,
              A.Better, A.Worse, A.Tie, Total, 100.0 * A.MeanRelChange);
}

} // namespace

int main() {
  bench::header(
      "Table III — per-sample outcomes vs -O0 (smaller = better)",
      "Table III");

  Dataset DS = buildDataset(bench::benchDataset());
  std::printf("training pipeline on %zu functions, evaluating on %zu...\n\n",
              DS.Train.size(), DS.Valid.size());
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());

  EvalResult Lat = evaluateModel(*Art.Latency, DS.Valid, PromptMode::Generic);
  EvalResult Corr =
      evaluateModel(*Art.Correctness, DS.Valid, PromptMode::Augmented);
  EvalResult Base = evaluateModel(*Art.Base, DS.Valid, PromptMode::Generic);

  unsigned N = Lat.Taxonomy.Total;
  std::printf("%-8s %-12s %6s %6s %6s %6s   %9s\n", "Metric", "Model",
              "Better", "Worse", "Tie", "Total", "MeanΔ vs-O0");
  row("Latency", "Latency", Lat.Latency, N);
  row("Latency", "Correctness", Corr.Latency, N);
  row("Latency", "Base", Base.Latency, N);
  row("Size", "Latency", Lat.Size, N);
  row("Size", "Correctness", Corr.Size, N);
  row("Size", "Base", Base.Size, N);
  row("ICount", "Latency", Lat.ICount, N);
  row("ICount", "Correctness", Corr.ICount, N);
  row("ICount", "Base", Base.ICount, N);

  std::printf("\npaper reference (4,386 samples): Latency row for "
              "Model-Latency 3696/0/690 with -50.68%%; base model ~4290 "
              "ties with -0.19%%\n");
  return 0;
}
