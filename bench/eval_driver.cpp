//===- eval_driver.cpp - Multi-process eval driver under chaos -------------===//
//
// Measures the crash-tolerant driver on the bench's standard validation
// corpus, two ways:
//
//  1. Differential gate: an all-healthy multi-process run must merge
//     bit-identically to the serial oracle, and a chaos run (crash + hang
//     + corrupt-result + flaky injections) must salvage every healthy
//     shard, quarantine exactly the poisoned ones, and merge the healthy
//     subset bit-identically to the oracle restricted to those shards.
//     Exits nonzero on any divergence, so CI runs `--tiny` as a gate.
//
//  2. Overhead: the supervised multi-process path re-runs the model in
//     worker processes (cold caches, process startup), so this reports
//     the absolute wall clocks rather than a speedup target — on a
//     single-core CI box the interesting number is the supervision
//     overhead per shard, not parallel scaling.
//
// Reported in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/EvalDriver.h"
#include "support/AtomicFile.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <sys/stat.h>

using namespace veriopt;
using namespace veriopt::bench;

namespace {

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Tiny = Argc > 1 && std::strcmp(Argv[1], "--tiny") == 0;

  header("Multi-process evaluation driver under chaos",
         "the crash-tolerance tentpole; not a paper figure");

  DatasetOptions DO = benchDataset();
  DO.TrainCount = 0;
  if (Tiny)
    DO.ValidCount = 8;
  Dataset DS = buildDataset(DO);
  RewritePolicyModel Base(presetQwen3B());
  const unsigned Shards = 4;
  const uint64_t PlanSeed = 0xE7A1;

  char Tmpl[] = "/tmp/veriopt-bench-driver-XXXXXX";
  if (!::mkdtemp(Tmpl)) {
    std::printf("cannot create scratch dir\n");
    return 1;
  }
  const std::string Dir = Tmpl;

  auto Plan = planEvalShards(DS.Valid.size(), Shards, PlanSeed);
  auto driverOpts = [&](const std::string &Sub,
                        std::vector<std::string> Extra) {
    std::string D = Dir + "/" + Sub;
    ::mkdir(D.c_str(), 0755);
    if (!writeFileAtomic(D + "/manifest.json",
                         shardManifestToJson(Plan, PlanSeed,
                                             DS.Valid.size()))) {
      std::printf("cannot write %s/manifest.json\n", D.c_str());
      std::exit(1);
    }
    EvalDriverOptions O;
    O.ManifestPath = D + "/manifest.json";
    O.ResultDir = D;
    O.WorkerArgv = {VERIOPT_WORKER_BIN,
                    "--valid-count", std::to_string(DS.Valid.size()),
                    "--dataset-seed", std::to_string(DO.Seed)};
    O.WorkerArgv.insert(O.WorkerArgv.end(), Extra.begin(), Extra.end());
    O.MaxWorkers = 2;
    O.MaxAttempts = 2;
    O.BackoffBaseMs = 10;
    O.BackoffCapMs = 100;
    O.WorkerDeadlineMs = Tiny ? 10000 : 120000;
    O.Seed = PlanSeed;
    return O;
  };

  std::printf("%zu validation samples, %u shards, 2 workers\n\n",
              DS.Valid.size(), Shards);

  EvalResult Oracle;
  double SerialMs = wallMs(
      [&] { Oracle = evaluateModel(Base, DS.Valid, PromptMode::Generic); });

  unsigned Failures = 0;
  std::string Err;

  // All healthy: the multi-process differential.
  EvalDriverReport Healthy;
  double HealthyMs = wallMs([&] {
    if (!runEvalDriver(driverOpts("healthy", {}), Base.config().Name,
                       Healthy, &Err))
      ++Failures;
  });
  unsigned D = countResultDivergence(Oracle, Healthy.Merged);
  Failures += D + !Healthy.allHealthy();
  std::printf("serial oracle (in-process)       %8.1f ms\n", SerialMs);
  std::printf("driver, all healthy              %8.1f ms  %s\n", HealthyMs,
              D ? "DIVERGED" : "bit-identical");

  // Chaos: shard 0 flaky (salvaged by retry), shard 1 crashes, shard 2
  // corrupts its result file. (No hang shard here: its cost is just the
  // deadline, measured nowhere interesting.)
  EvalDriverReport Chaos;
  double ChaosMs = wallMs([&] {
    if (!runEvalDriver(driverOpts("chaos",
                                  {"--inject-flaky-shard", "0",
                                   "--inject-crash-shard", "1",
                                   "--inject-corrupt-result", "2"}),
                       Base.config().Name, Chaos, &Err))
      ++Failures;
  });
  bool QuarantineRight = Chaos.Quarantined.size() == 2 &&
                         Chaos.Quarantined[0].Shard.Index == 1 &&
                         Chaos.Quarantined[1].Shard.Index == 2;
  std::vector<ShardEvalResult> Sub;
  for (unsigned I : Chaos.HealthyShardIndices)
    Sub.push_back(evaluateEvalShard(Base, DS.Valid, PromptMode::Generic,
                                    VerifyOptions(), Plan[I]));
  unsigned DSub = countResultDivergence(
      mergeShardResults(Base.config().Name, std::move(Sub)), Chaos.Merged);
  Failures += DSub + !QuarantineRight + (Chaos.Retried == 0);
  std::printf("driver, chaos (2 poison, 1 flaky) %7.1f ms  %s\n", ChaosMs,
              DSub || !QuarantineRight
                  ? "WRONG"
                  : "salvaged subset bit-identical");
  std::printf("  salvaged %u/%u shards, %u retries, %zu quarantined\n",
              Chaos.Salvaged, Shards, Chaos.Retried,
              Chaos.Quarantined.size());

  // Resume over the healthy directory: all shards served from disk.
  EvalDriverReport Resumed;
  double ResumeMs = wallMs([&] {
    if (!runEvalDriver(driverOpts("healthy", {}), Base.config().Name,
                       Resumed, &Err))
      ++Failures;
  });
  unsigned DRes = countResultDivergence(Oracle, Resumed.Merged);
  Failures += DRes + (Resumed.Reused != Shards) + (Resumed.Spawned != 0);
  std::printf("driver, resume (0 spawned)       %8.1f ms  %s\n", ResumeMs,
              DRes ? "DIVERGED" : "bit-identical");

  double PerShardOverheadMs =
      Shards ? (HealthyMs - SerialMs) / Shards : 0;
  std::printf("\nsupervision+process overhead ~%.1f ms/shard; results: %s\n",
              PerShardOverheadMs,
              Failures ? "FAILED (correctness bug)" : "all bit-identical");

  MetricsRegistry &M = MetricsRegistry::global();
  M.gauge("bench.serial_ms").set(SerialMs);
  M.gauge("bench.driver_healthy_ms").set(HealthyMs);
  M.gauge("bench.driver_chaos_ms").set(ChaosMs);
  M.gauge("bench.driver_resume_ms").set(ResumeMs);
  M.gauge("bench.driver_salvaged").set(Chaos.Salvaged);
  M.gauge("bench.driver_quarantined").set(Chaos.Quarantined.size());
  M.gauge("bench.driver_failures").set(Failures);
  writeBenchJson("eval_driver");

  std::string Cleanup = "rm -rf '" + Dir + "'";
  (void)std::system(Cleanup.c_str());
  return Failures ? 1 : 0;
}
