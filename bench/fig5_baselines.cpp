//===- fig5_baselines.cpp - Fig. 5: comparison against LLM baselines -------===//
//
// Paper Fig. 5: latency / correctness / instruction count / binary size of
// LLM-VeriOpt against SFT-trained baselines in parameter-size order
// (Qwen-1.5B/3B/7B, Llama-8B, LLM-Compiler-7B without task FT, Qwen-32B).
// Expected shape: larger models generally do better, but the 3B
// MODEL-LATENCY bucks the trend and leads latency/ICount/correctness;
// Qwen-32B takes binary size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

namespace {

void row(const EvalResult &E, double ParamsB, const char *Note) {
  std::printf("%-16s %5.1fB %9.2fx %8.1f%% %9.3f %9.3f  %s\n",
              E.ModelName.c_str(), ParamsB, E.GeoSpeedupVsO0,
              E.Taxonomy.pct(E.Taxonomy.Correct), E.ICount.GeoRatio,
              E.Size.GeoRatio, Note);
}

/// SFT a baseline preset on the training split (generic prompt), as the
/// paper does for all small/medium baselines.
EvalResult sftBaseline(const ModelConfig &Cfg, const Dataset &DS) {
  RewritePolicyModel Model(Cfg);
  std::vector<SFTExample> Data;
  for (const Sample &S : DS.Train) {
    SFTExample Ex;
    Ex.S = &S;
    Ex.TargetActions = oracleActions(S.RefTrace, Model);
    Ex.DiagClassTarget = 0;
    Data.push_back(Ex);
  }
  SFTOptions Opts;
  Opts.Epochs = 10;
  sftTrain(Model, Data, Opts);
  return evaluateModel(Model, DS.Valid, PromptMode::Generic);
}

} // namespace

int main() {
  bench::header("Fig. 5 — LLM-VeriOpt vs LLM baselines (parameter order)",
                "Fig. 5(a)-(d)");

  Dataset DS = buildDataset(bench::benchDataset());
  std::printf("corpus: %zu train / %zu validation\n\n", DS.Train.size(),
              DS.Valid.size());

  std::printf("%-16s %6s %10s %9s %9s %9s\n", "model", "params",
              "latency", "correct", "icount", "size");
  std::printf("%-16s %6s %10s %9s %9s %9s\n", "", "", "(vs-O0,hi)", "(hi)",
              "(ratio,lo)", "(ratio,lo)");

  row(sftBaseline(presetQwen15B(), DS), 1.5, "SFT");
  row(sftBaseline(presetQwen3B(), DS), 3.0, "SFT");
  row(sftBaseline(presetQwen7B(), DS), 7.0, "SFT");
  row(sftBaseline(presetLlama8B(), DS), 8.0, "SFT");
  {
    // LLM-Compiler-7B: evaluated without task-specific fine-tuning.
    RewritePolicyModel M(presetLLMCompiler7B());
    row(evaluateModel(M, DS.Valid, PromptMode::Generic), 7.0, "no FT");
  }
  row(sftBaseline(presetQwen32B(), DS), 32.0, "SFT");

  std::printf("training LLM-VeriOpt pipeline...\n");
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());
  EvalResult Veriopt =
      evaluateModel(*Art.Latency, DS.Valid, PromptMode::Generic);
  Veriopt.ModelName = "VERIOPT (3B)";
  row(Veriopt, 3.0, "GRPO+Alive");

  std::printf("\npaper reference: MODEL-LATENCY leads latency, ICount and "
              "correctness despite 3B params; Qwen-32B leads binary size\n");
  return 0;
}
