//===- fig4_training_dynamics.cpp - Fig. 4: GRPO reward curves -------------===//
//
// Paper Fig. 4: training dynamics of GRPO under (a) the correctness reward
// and (b) the latency reward, raw series plus the 0.95-EMA smoothing the
// paper plots. Printed as step series suitable for plotting; expected
// shape: both EMA curves rise, (b) starting near zero (the latency reward
// is sparse until the policy finds faster-than-reference rewrites).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace veriopt;

namespace {

void series(const char *Title, const std::vector<TrainLogEntry> &Log) {
  std::printf("\n%s\n", Title);
  std::printf("%6s %10s %10s %10s %8s\n", "step", "reward", "ema(0.95)",
              "equiv", "copies");
  size_t Stride = std::max<size_t>(1, Log.size() / 25);
  for (size_t I = 0; I < Log.size(); I += Stride)
    std::printf("%6u %10.4f %10.4f %9.1f%% %7.1f%%\n", Log[I].Step,
                Log[I].MeanReward, Log[I].EMAReward,
                100 * Log[I].EquivalentRate, 100 * Log[I].CopyRate);
  if (!Log.empty())
    std::printf("%6u %10.4f %10.4f %9.1f%% %7.1f%%  (final)\n",
                Log.back().Step, Log.back().MeanReward, Log.back().EMAReward,
                100 * Log.back().EquivalentRate, 100 * Log.back().CopyRate);
}

} // namespace

int main() {
  bench::header("Fig. 4 — GRPO training dynamics (raw + EMA-0.95)",
                "Fig. 4(a)/(b)");

  Dataset DS = buildDataset(bench::benchDataset());
  PipelineArtifacts Art = runTrainingPipeline(DS, bench::benchPipeline());

  series("(a) correctness-oriented stage (Eq.1 + CoT reward, augmented "
         "prompts)",
         Art.Stage2Log);
  series("(b) latency-oriented stage (Eq.4 reward, generic prompt)",
         Art.Stage3Log);

  double A0 = Art.Stage2Log.front().EMAReward;
  double A1 = Art.Stage2Log.back().EMAReward;
  double B0 = Art.Stage3Log.front().EMAReward;
  double B1 = Art.Stage3Log.back().EMAReward;
  std::printf("\nEMA rise: correctness %.3f -> %.3f, latency %.3f -> %.3f "
              "(paper: both curves rise monotonically after smoothing)\n",
              A0, A1, B0, B1);
  return 0;
}
